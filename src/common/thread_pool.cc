#include "common/thread_pool.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <utility>

#include "common/check.h"

namespace rago {

ThreadPool::ThreadPool(int num_threads) {
  RAGO_REQUIRE(num_threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void
ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    RAGO_CHECK(!shutdown_, "submit on a shut-down thread pool");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void
ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_ != nullptr) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void
ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // Shutdown with a drained queue.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (error != nullptr && first_error_ == nullptr) {
        first_error_ = error;
      }
      --in_flight_;
      if (in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

int
DefaultNumThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

int
ResolveNumThreads(int num_threads) {
  RAGO_REQUIRE(num_threads >= 0, "num_threads must be >= 0 (0 = auto)");
  return num_threads == 0 ? DefaultNumThreads() : num_threads;
}

namespace {

/**
 * Shared state of one ParallelFor wave. Helper tasks own it through a
 * shared_ptr, so a straggler that only gets scheduled after the caller
 * already returned finds an exhausted index counter and exits without
 * touching anything that could dangle.
 */
struct ParallelForState {
  ParallelForState(size_t n, std::function<void(size_t)> fn)
      : n(n), fn(std::move(fn)) {}

  const size_t n;
  const std::function<void(size_t)> fn;
  std::atomic<size_t> next{0};
  std::atomic<bool> abort{false};

  std::mutex mutex;
  std::condition_variable idle;
  int active = 0;  ///< Helpers currently draining indexes.
  size_t error_index = std::numeric_limits<size_t>::max();
  std::exception_ptr error;

  /// Consumes indexes until exhaustion, a thrown body, or abort.
  void Drain() {
    for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      if (abort.load(std::memory_order_acquire)) {
        return;
      }
      try {
        fn(i);
      } catch (...) {
        abort.store(true, std::memory_order_release);
        std::lock_guard<std::mutex> lock(mutex);
        if (i < error_index) {
          error_index = i;
          error = std::current_exception();
        }
        return;
      }
    }
  }
};

}  // namespace

void
ParallelFor(ThreadPool* pool, size_t n,
            const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (pool == nullptr || pool->num_threads() == 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  auto state = std::make_shared<ParallelForState>(n, fn);
  // The caller drains too, so n-1 helpers saturate the wave; capping at
  // the worker count bounds queue growth under nested calls.
  const size_t helpers =
      std::min(n - 1, static_cast<size_t>(pool->num_threads()));
  for (size_t t = 0; t < helpers; ++t) {
    pool->Submit([state] {
      {
        std::lock_guard<std::mutex> lock(state->mutex);
        ++state->active;
      }
      state->Drain();
      {
        std::lock_guard<std::mutex> lock(state->mutex);
        if (--state->active == 0) {
          state->idle.notify_all();
        }
      }
    });
  }
  // Participating (instead of blocking on pool->Wait()) is what makes
  // nested ParallelFor safe: the wave finishes even if every helper is
  // stuck behind other pool work, and a worker-thread caller never
  // waits for its own task to retire.
  state->Drain();
  std::unique_lock<std::mutex> lock(state->mutex);
  state->idle.wait(lock, [&] { return state->active == 0; });
  if (state->error != nullptr) {
    std::rethrow_exception(state->error);
  }
}

}  // namespace rago
