#include "common/thread_pool.h"

#include <memory>
#include <utility>

#include "common/check.h"

namespace rago {

ThreadPool::ThreadPool(int num_threads) {
  RAGO_REQUIRE(num_threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void
ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    RAGO_CHECK(!shutdown_, "submit on a shut-down thread pool");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void
ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_ != nullptr) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void
ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // Shutdown with a drained queue.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (error != nullptr && first_error_ == nullptr) {
        first_error_ = error;
      }
      --in_flight_;
      if (in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

void
ParallelFor(ThreadPool* pool, size_t n,
            const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (pool == nullptr || pool->num_threads() == 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  // One shared counter; each worker drains indexes until exhausted.
  auto next = std::make_shared<std::atomic<size_t>>(0);
  const size_t tasks =
      std::min(n, static_cast<size_t>(pool->num_threads()));
  for (size_t t = 0; t < tasks; ++t) {
    pool->Submit([next, n, &fn] {
      for (size_t i = next->fetch_add(1); i < n; i = next->fetch_add(1)) {
        fn(i);
      }
    });
  }
  pool->Wait();
}

}  // namespace rago
