/**
 * @file thread_pool.h
 * Small fixed-size worker pool for CPU-side fan-out.
 *
 * The sharded retrieval tier fans every query batch out to per-shard
 * indexes (one logical server per shard); the optimizer's Algorithm-1
 * profiling and schedule enumeration are embarrassingly parallel too.
 * Both need only a minimal submit/wait pool, not a full task graph.
 * Determinism contract: callers write results into pre-sized slots
 * keyed by task index, so output is identical for any thread count
 * (including 1); the pool itself never reorders observable results.
 */
#ifndef RAGO_COMMON_THREAD_POOL_H
#define RAGO_COMMON_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rago {

/// Fixed-size worker pool: Submit() closures, Wait() for quiescence.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (must be >= 1).
  explicit ThreadPool(int num_threads);

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /**
   * Blocks until every submitted task has finished running. If any
   * task threw, rethrows the first captured exception on the calling
   * thread (matching what an inline run would have thrown).
   *
   * Must not be called from a worker thread (a worker waiting on its
   * own wave can never drain it); use ParallelFor for nested fan-out.
   */
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  ///< Queued + currently-executing tasks.
  std::exception_ptr first_error_;  ///< First task exception, if any.
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// Hardware concurrency clamped to >= 1; what a 0-valued `num_threads`
/// knob resolves to.
int DefaultNumThreads();

/// Resolves a `num_threads` option: 0 means DefaultNumThreads().
int ResolveNumThreads(int num_threads);

/**
 * Runs fn(0) .. fn(n-1), work-stealing indexes from a shared counter.
 * The calling thread participates alongside up to num_threads helper
 * tasks, and the call never blocks on pool quiescence, so nesting a
 * ParallelFor inside another ParallelFor body on the same pool is safe:
 * helpers that never get scheduled are no-ops once the index counter is
 * exhausted. With `pool == nullptr` the loop runs inline.
 *
 * Every index is visited exactly once (so index-keyed outputs are
 * thread-count-invariant) unless a body throws: then remaining indexes
 * are abandoned and the lowest-index captured exception is rethrown on
 * the calling thread after all in-flight bodies finish.
 */
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace rago

#endif  // RAGO_COMMON_THREAD_POOL_H
