/**
 * @file units.h
 * Unit helpers and numeric constants used across the RAGO library.
 *
 * All physical quantities in the library use SI base units expressed as
 * `double`: seconds for time, bytes for data, FLOPs for compute work.
 * Rates are per-second (bytes/s, FLOP/s, queries/s). The helpers below
 * exist so call sites read like the paper ("96 GB HBM", "459 TFLOPS")
 * instead of bare exponents.
 */
#ifndef RAGO_COMMON_UNITS_H
#define RAGO_COMMON_UNITS_H

#include <cstdint>

namespace rago {

/// Decimal multipliers (used for FLOPS, network/memory bandwidth, counts).
inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;
inline constexpr double kTera = 1e12;

/// Binary multipliers (used for memory capacities).
inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * kKiB;
inline constexpr double kGiB = 1024.0 * kMiB;
inline constexpr double kTiB = 1024.0 * kGiB;

/// Milliseconds/microseconds to seconds.
inline constexpr double kMilli = 1e-3;
inline constexpr double kMicro = 1e-6;

/// Convert seconds to milliseconds (for reporting only).
inline constexpr double ToMillis(double seconds) { return seconds * 1e3; }

/// Convert seconds to microseconds (for reporting only).
inline constexpr double ToMicros(double seconds) { return seconds * 1e6; }

}  // namespace rago

#endif  // RAGO_COMMON_UNITS_H
