#include "hardware/xpu.h"

#include "common/check.h"

namespace rago {

XpuSpec MakeXpu(XpuVersion version) {
  XpuSpec spec;
  switch (version) {
    case XpuVersion::kA:
      spec.name = "XPU-A";
      spec.peak_flops = 197 * kTera;
      spec.hbm_bytes = 16 * kGiB;
      spec.hbm_bw = 819 * kGiga;
      spec.ici_bw = 200 * kGiga;
      return spec;
    case XpuVersion::kB:
      spec.name = "XPU-B";
      spec.peak_flops = 275 * kTera;
      spec.hbm_bytes = 32 * kGiB;
      spec.hbm_bw = 1200 * kGiga;
      spec.ici_bw = 300 * kGiga;
      return spec;
    case XpuVersion::kC:
      spec.name = "XPU-C";
      spec.peak_flops = 459 * kTera;
      spec.hbm_bytes = 96 * kGiB;
      spec.hbm_bw = 2765 * kGiga;
      spec.ici_bw = 600 * kGiga;
      return spec;
  }
  RAGO_CHECK(false, "unknown XPU version");
}

}  // namespace rago
