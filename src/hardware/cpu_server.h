/**
 * @file cpu_server.h
 * Host CPU server specification used by the retrieval cost model.
 *
 * The paper models retrieval hosts after AMD EPYC Milan: 96 cores,
 * 384 GB memory, 460 GB/s memory bandwidth. ScaNN calibration (paper
 * §4b) contributes two constants: 18 GB/s of PQ-code scanning
 * throughput per core and ~80% achievable memory-bandwidth
 * utilization.
 */
#ifndef RAGO_HARDWARE_CPU_SERVER_H
#define RAGO_HARDWARE_CPU_SERVER_H

#include <string>

#include "common/units.h"

namespace rago {

/// Roofline-level description of one retrieval host server.
struct CpuServerSpec {
  std::string name = "EPYC-Milan";
  int cores = 96;                        ///< Physical cores per server.
  double dram_bytes = 384 * kGiB;        ///< Host memory capacity.
  double mem_bw = 460 * kGiga;           ///< Peak memory bandwidth, B/s.
  double mem_efficiency = 0.8;           ///< Achievable BW fraction.
  double scan_bytes_per_core = 18 * kGiga;  ///< PQ scan throughput/core, B/s.

  /// Effective (derated) aggregate memory bandwidth in bytes/s.
  double EffectiveMemBw() const { return mem_bw * mem_efficiency; }

  /// Aggregate compute-side scan throughput with `threads` busy cores.
  double ScanThroughput(int threads) const {
    const int active = threads < cores ? threads : cores;
    return scan_bytes_per_core * active;
  }
};

/// Paper-default retrieval host.
inline CpuServerSpec DefaultCpuServer() { return CpuServerSpec{}; }

}  // namespace rago

#endif  // RAGO_HARDWARE_CPU_SERVER_H
