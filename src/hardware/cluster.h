/**
 * @file cluster.h
 * Serving-cluster resource description.
 *
 * The paper's system setup (§4): 16-32 host servers, 4 XPUs per
 * server, so 64-128 XPUs total; a minimum of 16 hosts is needed to fit
 * the 5.6 TiB quantized vector database in host memory. Retrieval runs
 * on the host CPUs, inference on the XPUs.
 */
#ifndef RAGO_HARDWARE_CLUSTER_H
#define RAGO_HARDWARE_CLUSTER_H

#include "common/check.h"
#include "hardware/cpu_server.h"
#include "hardware/xpu.h"

namespace rago {

/// Total hardware budget available to one RAG serving pipeline.
struct ClusterConfig {
  XpuSpec xpu = DefaultXpu();
  CpuServerSpec cpu_server = DefaultCpuServer();
  int num_servers = 16;     ///< Host CPU servers (also retrieval shards).
  int xpus_per_server = 4;  ///< Accelerators attached per host.

  /// Total accelerators in the cluster.
  int TotalXpus() const { return num_servers * xpus_per_server; }

  /// Aggregate host DRAM in bytes (bounds the vector database size).
  double TotalHostDram() const { return num_servers * cpu_server.dram_bytes; }

  /// Throws ConfigError if the description is degenerate.
  void Validate() const {
    RAGO_REQUIRE(num_servers > 0, "cluster needs at least one server");
    RAGO_REQUIRE(xpus_per_server > 0, "cluster needs XPUs on each server");
    RAGO_REQUIRE(xpu.peak_flops > 0 && xpu.hbm_bw > 0,
                 "XPU spec must have positive compute and bandwidth");
  }
};

/// Paper-default 16-server / 64-XPU cluster.
inline ClusterConfig DefaultCluster() { return ClusterConfig{}; }

/// Larger 32-server / 128-XPU configuration used in some case studies.
inline ClusterConfig LargeCluster() {
  ClusterConfig cluster;
  cluster.num_servers = 32;
  return cluster;
}

}  // namespace rago

#endif  // RAGO_HARDWARE_CLUSTER_H
