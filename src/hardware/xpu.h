/**
 * @file xpu.h
 * Generic systolic-array ML accelerator ("XPU") specifications.
 *
 * The paper models inference on three XPU generations (Table 2),
 * resembling TPU v5e / v4 / v5p. Only roofline-relevant quantities are
 * captured: peak compute, HBM capacity and bandwidth, and inter-chip
 * link bandwidth, plus achievable-efficiency derates that a calibrated
 * production simulator would fold into its operator costs.
 */
#ifndef RAGO_HARDWARE_XPU_H
#define RAGO_HARDWARE_XPU_H

#include <string>

#include "common/units.h"

namespace rago {

/// Which XPU generation (paper Table 2). XPU-C is the paper default.
enum class XpuVersion {
  kA,  ///< 197 TFLOPS, 16 GB HBM @ 819 GB/s, 200 GB/s ICI (like TPU v5e).
  kB,  ///< 275 TFLOPS, 32 GB HBM @ 1200 GB/s, 300 GB/s ICI (like TPU v4).
  kC,  ///< 459 TFLOPS, 96 GB HBM @ 2765 GB/s, 600 GB/s ICI (like TPU v5p).
};

/// Roofline-level description of one accelerator chip.
struct XpuSpec {
  std::string name;            ///< Human-readable name ("XPU-C").
  double peak_flops = 0.0;     ///< Peak dense int8/bf16 compute, FLOP/s.
  double hbm_bytes = 0.0;      ///< On-chip HBM capacity in bytes.
  double hbm_bw = 0.0;         ///< HBM bandwidth, bytes/s.
  double ici_bw = 0.0;         ///< Aggregate inter-chip link bandwidth, B/s.

  /// Fraction of peak FLOPS achievable on large dense ops (MFU derate).
  double flops_efficiency = 0.6;
  /// Fraction of peak HBM bandwidth achievable on streaming reads.
  double mem_efficiency = 0.8;
  /// Fraction of peak link bandwidth achievable for collectives.
  double net_efficiency = 0.8;

  /// Effective (derated) compute rate in FLOP/s.
  double EffectiveFlops() const { return peak_flops * flops_efficiency; }
  /// Effective (derated) memory bandwidth in bytes/s.
  double EffectiveMemBw() const { return hbm_bw * mem_efficiency; }
  /// Effective (derated) interconnect bandwidth in bytes/s.
  double EffectiveNetBw() const { return ici_bw * net_efficiency; }
};

/// Returns the Table 2 spec for a given XPU generation.
XpuSpec MakeXpu(XpuVersion version);

/// Paper-default accelerator (XPU-C).
inline XpuSpec DefaultXpu() { return MakeXpu(XpuVersion::kC); }

}  // namespace rago

#endif  // RAGO_HARDWARE_XPU_H
