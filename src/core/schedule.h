/**
 * @file schedule.h
 * A complete RAG serving schedule: placement + allocation + batching.
 *
 * The three scheduling decisions of RAGO (paper §6.1):
 *  - task placement: which pre-prefix stages share ("collocate" on)
 *    the same XPU group, expressed as a non-decreasing group id per
 *    stage of the prefix chain;
 *  - resource allocation: XPU count per group, decode XPU count, and
 *    retrieval server count;
 *  - batching policy: per-stage batch sizes, the decode continuous
 *    batch, and the iterative retrieval/prefix batch (Case III).
 */
#ifndef RAGO_CORE_SCHEDULE_H
#define RAGO_CORE_SCHEDULE_H

#include <cstdint>
#include <numeric>
#include <tuple>
#include <vector>

#include "common/check.h"

namespace rago::core {

/// One candidate scheduling policy for a RAGSchema pipeline.
struct Schedule {
  /**
   * Collocation group of each prefix-chain stage (same order as
   * RAGSchema::PrefixChainStages()). Ids start at 0 and are
   * non-decreasing; equal ids mean the stages time-multiplex one XPU
   * group. Only neighboring stages may share a group (paper Fig. 13).
   */
  std::vector<int> chain_group;
  /// XPUs allocated to each collocation group.
  std::vector<int> group_chips;
  /// Batch size of each prefix-chain stage.
  std::vector<int64_t> chain_batch;

  int decode_chips = 1;        ///< XPUs for the main-LLM decode stage.
  int64_t decode_batch = 1;    ///< Continuous-batching batch size.
  int retrieval_servers = 1;   ///< CPU servers serving the database.
  int64_t retrieval_batch = 1; ///< Request batch per initial retrieval.
  /// Batch for decoder-initiated retrieval+prefix rounds (Case III).
  int64_t iterative_batch = 1;

  /// All decision fields as one comparable tuple.
  auto Key() const {
    return std::tie(chain_group, group_chips, chain_batch, decode_chips,
                    decode_batch, retrieval_servers, retrieval_batch,
                    iterative_batch);
  }

  /**
   * Total lexicographic order over every decision field. Used as the
   * Pareto-frontier tie-break: among schedules with identical
   * (TTFT, QPS/Chip) the Key()-smallest one survives, so parallel
   * enumeration order cannot decide which duplicate is reported.
   */
  friend bool operator<(const Schedule& a, const Schedule& b) {
    return a.Key() < b.Key();
  }

  friend bool operator==(const Schedule& a, const Schedule& b) {
    return a.Key() == b.Key();
  }

  /// XPUs allocated to inference stages (groups + decode).
  int AllocatedXpus() const {
    return std::accumulate(group_chips.begin(), group_chips.end(), 0) +
           decode_chips;
  }

  /// Number of collocation groups.
  int NumGroups() const { return static_cast<int>(group_chips.size()); }

  /// Structural validation against a chain of `chain_size` stages.
  void Validate(size_t chain_size) const {
    RAGO_REQUIRE(chain_group.size() == chain_size,
                 "chain_group size must match the prefix chain");
    RAGO_REQUIRE(chain_batch.size() == chain_size,
                 "chain_batch size must match the prefix chain");
    RAGO_REQUIRE(!group_chips.empty(), "at least one XPU group required");
    int prev = 0;
    for (size_t i = 0; i < chain_group.size(); ++i) {
      const int g = chain_group[i];
      RAGO_REQUIRE(g >= 0 && g < NumGroups(), "group id out of range");
      RAGO_REQUIRE(g >= prev && g - prev <= 1,
                   "group ids must be non-decreasing without gaps");
      prev = g;
    }
    RAGO_REQUIRE(chain_group.empty() || chain_group.front() == 0,
                 "group ids must start at 0");
    RAGO_REQUIRE(chain_group.empty() ||
                     chain_group.back() == NumGroups() - 1,
                 "every group must own at least one stage");
    for (int chips : group_chips) {
      RAGO_REQUIRE(chips > 0, "each group needs at least one XPU");
    }
    RAGO_REQUIRE(decode_chips > 0, "decode needs at least one XPU");
    for (int64_t b : chain_batch) {
      RAGO_REQUIRE(b > 0, "batch sizes must be positive");
    }
    RAGO_REQUIRE(decode_batch > 0 && retrieval_batch > 0 &&
                     iterative_batch > 0,
                 "batch sizes must be positive");
    RAGO_REQUIRE(retrieval_servers > 0, "retrieval needs a server");
  }
};

}  // namespace rago::core

#endif  // RAGO_CORE_SCHEDULE_H
