/**
 * @file stage_perf.h
 * Per-stage performance sample.
 */
#ifndef RAGO_CORE_STAGE_PERF_H
#define RAGO_CORE_STAGE_PERF_H

#include <limits>

#include "models/inference.h"

namespace rago::core {

/// Cost of one pipeline stage at a specific (chips, batch) setting.
struct StagePerf {
  /// Seconds to process one batch through the stage.
  double latency = std::numeric_limits<double>::infinity();
  /// Requests per second in steady state.
  double throughput = 0.0;
  /// HBM bytes needed per chip (0 for the CPU retrieval stage).
  double mem_per_chip = 0.0;
  /// Chosen sharding (XPU stages only).
  models::ShardingPlan plan;
  bool feasible = false;
};

}  // namespace rago::core

#endif  // RAGO_CORE_STAGE_PERF_H
