#include "core/pipeline_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/math_util.h"
#include "retrieval/perf/bruteforce_model.h"
#include "retrieval/perf/scann_model.h"

namespace rago::core {
namespace {

/// Builds the analytical database spec from a schema's retrieval config.
retrieval::DatabaseSpec ToDatabaseSpec(const RetrievalConfig& config) {
  retrieval::DatabaseSpec spec;
  spec.num_vectors = config.num_db_vectors;
  spec.dim = config.vector_dim;
  spec.pq_bytes_per_vector = config.pq_bytes_per_vector;
  spec.scan_fraction = config.scan_fraction;
  return spec;
}

}  // namespace

PipelineModel::PipelineModel(RAGSchema schema, ClusterConfig cluster)
    : schema_(std::move(schema)), cluster_(std::move(cluster)) {
  schema_.Validate();
  cluster_.Validate();
  chain_ = schema_.PrefixChainStages();

  llm_ = std::make_unique<models::InferenceModel>(schema_.generative_llm,
                                                  cluster_.xpu);
  if (schema_.document_encoder.has_value()) {
    encoder_ = std::make_unique<models::InferenceModel>(
        *schema_.document_encoder, cluster_.xpu);
  }
  if (schema_.query_rewriter.has_value()) {
    rewriter_ = std::make_unique<models::InferenceModel>(
        *schema_.query_rewriter, cluster_.xpu);
  }
  if (schema_.reranker.has_value()) {
    reranker_ = std::make_unique<models::InferenceModel>(*schema_.reranker,
                                                         cluster_.xpu);
  }
}

const models::InferenceModel&
PipelineModel::ModelFor(StageType stage) const {
  switch (stage) {
    case StageType::kDatabaseEncode:
      RAGO_CHECK(encoder_ != nullptr, "schema has no document encoder");
      return *encoder_;
    case StageType::kRewritePrefix:
    case StageType::kRewriteDecode:
      RAGO_CHECK(rewriter_ != nullptr, "schema has no query rewriter");
      return *rewriter_;
    case StageType::kRerank:
      RAGO_CHECK(reranker_ != nullptr, "schema has no reranker");
      return *reranker_;
    case StageType::kPrefix:
    case StageType::kDecode:
      return *llm_;
    case StageType::kRetrieval:
      break;
  }
  RAGO_CHECK(false, "retrieval stage has no inference model");
}

int64_t
PipelineModel::AvgDecodeContext() const {
  return schema_.workload.prefix_tokens + schema_.workload.decode_tokens / 2;
}

int64_t
PipelineModel::MaxDecodeContext() const {
  return schema_.workload.prefix_tokens + schema_.workload.decode_tokens;
}

StagePerf
PipelineModel::EvalChainStage(StageType stage, int chips,
                              int64_t batch) const {
  RAGO_REQUIRE(chips > 0 && batch > 0, "chips and batch must be positive");
  const WorkloadConfig& w = schema_.workload;
  StagePerf perf;

  switch (stage) {
    case StageType::kDatabaseEncode: {
      // Encode the uploaded context in fixed-size chunks; a request
      // contributes ceil(context / chunk) encoder invocations.
      const int64_t chunks = CeilDiv(w.context_tokens, w.encode_chunk_tokens);
      const models::PhaseCost best = ModelFor(stage).BestEncode(
          chips, batch * chunks, w.encode_chunk_tokens);
      perf.latency = best.latency;
      perf.throughput = best.throughput / static_cast<double>(chunks);
      perf.mem_per_chip = best.mem_per_chip;
      perf.plan = best.plan;
      perf.feasible = best.feasible;
      return perf;
    }
    case StageType::kRewritePrefix: {
      const models::PhaseCost best =
          ModelFor(stage).BestPrefix(chips, batch, w.question_tokens);
      perf.latency = best.latency;
      perf.throughput = best.throughput;
      perf.mem_per_chip = best.mem_per_chip;
      perf.plan = best.plan;
      perf.feasible = best.feasible;
      return perf;
    }
    case StageType::kRewriteDecode: {
      // Autoregressive generation of the rewritten query.
      const int64_t steps = w.rewrite_output_tokens;
      const int64_t avg_ctx = w.question_tokens + steps / 2;
      const int64_t max_ctx = w.question_tokens + steps;
      const models::PhaseCost best =
          ModelFor(stage).BestDecode(chips, batch, avg_ctx, max_ctx);
      perf.latency = static_cast<double>(steps) * best.latency;
      perf.throughput = best.throughput / static_cast<double>(steps);
      perf.mem_per_chip = best.mem_per_chip;
      perf.plan = best.plan;
      perf.feasible = best.feasible;
      return perf;
    }
    case StageType::kRerank: {
      // Score rerank_candidates passages of passage_tokens each.
      const int64_t passages = w.rerank_candidates;
      const models::PhaseCost best = ModelFor(stage).BestEncode(
          chips, batch * passages, w.passage_tokens);
      perf.latency = best.latency;
      perf.throughput = best.throughput / static_cast<double>(passages);
      perf.mem_per_chip = best.mem_per_chip;
      perf.plan = best.plan;
      perf.feasible = best.feasible;
      return perf;
    }
    case StageType::kPrefix:
      return EvalPrefixCached(chips, batch, w.prefix_cache_hit_rate);
    case StageType::kRetrieval:
    case StageType::kDecode:
      RAGO_REQUIRE(false, "EvalChainStage handles prefix-chain stages only");
  }
  return perf;
}

StagePerf
PipelineModel::EvalPrefixCached(int chips, int64_t batch,
                                double hit_rate) const {
  RAGO_REQUIRE(chips > 0 && batch > 0, "chips and batch must be positive");
  RAGO_REQUIRE(hit_rate >= 0.0 && hit_rate <= 1.0,
               "prefix cache hit rate must be in [0, 1]");
  const WorkloadConfig& w = schema_.workload;
  // Long-context LLM-only baselines use hybrid global/local
  // attention (paper §5.2); RAG prompts use full attention.
  const models::AttentionMode mode =
      (!schema_.retrieval_enabled && w.context_tokens > 0)
          ? models::HybridLocalAttention()
          : models::FullAttention();
  // Document-level KV caching (RAGCache-style) skips prefix compute
  // for the cached share of the retrieved content. The clamp keeps
  // the token count positive at the hit_rate = 1.0 limit even when
  // question_tokens is 0, so the priced latency stays finite.
  int64_t prefix_tokens = w.prefix_tokens;
  if (hit_rate > 0 && schema_.retrieval_enabled) {
    const double retrieved = w.prefix_tokens - w.question_tokens;
    prefix_tokens =
        w.question_tokens +
        static_cast<int64_t>(retrieved * (1.0 - hit_rate));
    prefix_tokens = std::max<int64_t>(prefix_tokens, 1);
  }
  const models::PhaseCost best = ModelFor(StageType::kPrefix)
                                     .BestPrefix(chips, batch,
                                                 prefix_tokens, mode);
  StagePerf perf;
  perf.latency = best.latency;
  perf.throughput = best.throughput;
  perf.mem_per_chip = best.mem_per_chip;
  perf.plan = best.plan;
  perf.feasible = best.feasible;
  return perf;
}

StagePerf
PipelineModel::EvalDecode(int chips, int64_t batch) const {
  const int64_t steps = schema_.workload.decode_tokens;
  const models::PhaseCost best =
      llm_->BestDecode(chips, batch, AvgDecodeContext(), MaxDecodeContext());
  StagePerf perf;
  perf.latency = best.latency;  // One step: the TPOT building block.
  perf.throughput = best.throughput / static_cast<double>(steps);
  perf.mem_per_chip = best.mem_per_chip;
  perf.plan = best.plan;
  perf.feasible = best.feasible;
  return perf;
}

size_t
PipelineModel::PostRetrievalChainIndex() const {
  for (size_t i = 0; i < chain_.size(); ++i) {
    if (chain_[i] == StageType::kRerank || chain_[i] == StageType::kPrefix) {
      return i;
    }
  }
  RAGO_CHECK(false, "prefix stage missing from chain");
}

int
PipelineModel::MinRetrievalServers() const {
  if (!schema_.retrieval_enabled || schema_.retrieval.brute_force) {
    return 1;  // Per-request data lives on the (existing) host.
  }
  const retrieval::DatabaseSpec spec = ToDatabaseSpec(schema_.retrieval);
  return static_cast<int>(
      std::ceil(spec.QuantizedBytes() / cluster_.cpu_server.dram_bytes));
}

int
PipelineModel::RetrievalChipEquivalents(int servers) const {
  if (!schema_.retrieval_enabled || schema_.retrieval.brute_force) {
    // Brute-force per-request databases ride along in the inference
    // hosts' spare DRAM; no dedicated retrieval tier is reserved.
    return 0;
  }
  return servers * cluster_.xpus_per_server;
}

StagePerf
PipelineModel::EvalRetrieval(int request_batch, int servers) const {
  RAGO_REQUIRE(schema_.retrieval_enabled,
               "schema disables retrieval; no retrieval stage to evaluate");
  RAGO_REQUIRE(request_batch > 0 && servers > 0,
               "batch and server count must be positive");
  const RetrievalConfig& r = schema_.retrieval;
  const int64_t queries =
      static_cast<int64_t>(request_batch) * r.queries_per_retrieval;

  StagePerf perf;
  if (r.brute_force) {
    const retrieval::BruteForceModel model(r.num_db_vectors, r.vector_dim,
                                           r.brute_force_bytes_per_dim,
                                           cluster_.cpu_server);
    const retrieval::RetrievalCost cost = model.Search(queries);
    perf.latency = cost.latency;
    perf.throughput = cost.throughput / r.queries_per_retrieval;
    perf.feasible = true;
    return perf;
  }

  if (servers < MinRetrievalServers() || servers > cluster_.num_servers) {
    perf.feasible = false;
    return perf;
  }
  const retrieval::ScannModel model(ToDatabaseSpec(r), cluster_.cpu_server,
                                    servers);
  const retrieval::RetrievalCost cost = model.Search(queries);
  perf.latency = cost.latency;
  perf.throughput = cost.throughput / r.queries_per_retrieval;
  perf.feasible = true;
  return perf;
}

StagePerf
PipelineModel::EvalIngestPrefix(int chips, int64_t batch) const {
  const WorkloadConfig& w = schema_.workload;
  const int64_t ingest_tokens =
      static_cast<int64_t>(w.neighbors) * w.passage_tokens;
  const models::PhaseCost best =
      llm_->BestPrefix(chips, batch, ingest_tokens);
  StagePerf perf;
  perf.latency = best.latency;
  perf.throughput = best.throughput;
  perf.mem_per_chip = best.mem_per_chip;
  perf.plan = best.plan;
  perf.feasible = best.feasible;
  return perf;
}

StagePerfProvider
PipelineModel::LiveProvider() const {
  StagePerfProvider provider;
  provider.chain = [this](StageType stage, int chips, int64_t batch) {
    return EvalChainStage(stage, chips, batch);
  };
  provider.decode = [this](int chips, int64_t batch) {
    return EvalDecode(chips, batch);
  };
  provider.retrieval = [this](int request_batch, int servers) {
    return EvalRetrieval(request_batch, servers);
  };
  provider.ingest = [this](int chips, int64_t batch) {
    return EvalIngestPrefix(chips, batch);
  };
  return provider;
}

StagePerfProvider
PipelineModel::ProviderWithRetrievalModel(
    const retrieval::RetrievalModel& model) const {
  RAGO_REQUIRE(schema_.retrieval_enabled,
               "schema disables retrieval; nothing for the measured "
               "retrieval model to price");
  StagePerfProvider provider = LiveProvider();
  const int qpr = schema_.retrieval.queries_per_retrieval;
  provider.retrieval = [this, &model, qpr](int request_batch, int servers) {
    RAGO_REQUIRE(request_batch > 0 && servers > 0,
                 "batch and server count must be positive");
    StagePerf perf;
    // Capacity feasibility stays with the cluster model; pricing comes
    // from the measured model (it describes the deployment it was
    // calibrated on, whatever the nominal server count).
    if (!schema_.retrieval.brute_force &&
        (servers < MinRetrievalServers() ||
         servers > cluster_.num_servers)) {
      perf.feasible = false;
      return perf;
    }
    const int64_t queries = static_cast<int64_t>(request_batch) * qpr;
    const retrieval::RetrievalCost cost = model.Search(queries);
    perf.latency = cost.latency;
    perf.throughput = cost.throughput / qpr;
    perf.feasible = true;
    return perf;
  };
  return provider;
}

EndToEndPerf
PipelineModel::Evaluate(const Schedule& schedule) const {
  return EvaluateWith(schedule, LiveProvider());
}

EndToEndPerf
PipelineModel::EvaluateWith(const Schedule& schedule,
                            const StagePerfProvider& provider) const {
  schedule.Validate(chain_.size());
  const WorkloadConfig& w = schema_.workload;
  EndToEndPerf perf;
  perf.feasible = true;

  // --- Prefix-chain groups (time-multiplexed collocation). ---
  std::vector<double> group_latency(schedule.group_chips.size(), 0.0);
  std::vector<double> group_seconds_per_request(schedule.group_chips.size(),
                                                0.0);
  std::vector<double> group_mem(schedule.group_chips.size(), 0.0);
  int prefix_group = -1;
  for (size_t i = 0; i < chain_.size(); ++i) {
    const int g = schedule.chain_group[i];
    const StagePerf stage_perf = provider.chain(
        chain_[i], schedule.group_chips[static_cast<size_t>(g)],
        schedule.chain_batch[i]);
    if (!stage_perf.feasible) {
      perf.feasible = false;
      return perf;
    }
    group_latency[static_cast<size_t>(g)] += stage_perf.latency;
    group_seconds_per_request[static_cast<size_t>(g)] +=
        1.0 / stage_perf.throughput;
    group_mem[static_cast<size_t>(g)] += stage_perf.mem_per_chip;
    if (chain_[i] == StageType::kPrefix) {
      prefix_group = g;
    }
  }
  RAGO_CHECK(prefix_group >= 0, "prefix stage missing from chain");

  // Collocated models must fit on the group's chips together.
  for (size_t g = 0; g < group_mem.size(); ++g) {
    if (group_mem[g] > cluster_.xpu.hbm_bytes) {
      perf.feasible = false;
      return perf;
    }
  }

  double ttft = 0.0;
  double min_throughput = std::numeric_limits<double>::infinity();

  // --- Retrieval (initial). ---
  StagePerf retrieval_perf;
  if (schema_.retrieval_enabled) {
    retrieval_perf = provider.retrieval(
        static_cast<int>(schedule.retrieval_batch), schedule.retrieval_servers);
    if (!retrieval_perf.feasible) {
      perf.feasible = false;
      return perf;
    }
    ttft += retrieval_perf.latency;
    // The retrieval tier serves every retrieval of every sequence.
    const double per_sequence_load = schema_.retrieval.retrievals_per_sequence;
    min_throughput =
        std::min(min_throughput, retrieval_perf.throughput / per_sequence_load);

    // A collocated group spanning the retrieval point pauses until
    // retrieval completes (paper §6.1), inflating its busy time.
    const size_t after = PostRetrievalChainIndex();
    if (after > 0 &&
        schedule.chain_group[after] == schedule.chain_group[after - 1]) {
      const auto g = static_cast<size_t>(schedule.chain_group[after]);
      group_seconds_per_request[g] +=
          retrieval_perf.latency /
          static_cast<double>(schedule.retrieval_batch);
    }
  }

  for (size_t g = 0; g < group_latency.size(); ++g) {
    ttft += group_latency[g];
    min_throughput =
        std::min(min_throughput, 1.0 / group_seconds_per_request[g]);
  }

  // --- Decode (continuous batching). ---
  const StagePerf decode_perf =
      provider.decode(schedule.decode_chips, schedule.decode_batch);
  if (!decode_perf.feasible) {
    perf.feasible = false;
    return perf;
  }
  double tpot = decode_perf.latency;
  double decode_request_throughput = decode_perf.throughput;

  // --- Iterative retrieval stalls (paper §5.3). ---
  if (schema_.IterativeRetrieval()) {
    const int iter_rounds = schema_.retrieval.retrievals_per_sequence - 1;
    // Retrieval round at the iterative batch size.
    const StagePerf iter_retrieval =
        provider.retrieval(static_cast<int>(schedule.iterative_batch),
                           schedule.retrieval_servers);
    // Newly retrieved passages are ingested through the prefix stage.
    const StagePerf ingest = provider.ingest(
        schedule.group_chips[static_cast<size_t>(prefix_group)],
        schedule.iterative_batch);
    if (!iter_retrieval.feasible || !ingest.feasible) {
      perf.feasible = false;
      return perf;
    }
    // Expected wait to fill an iterative batch: retrieval requests
    // arrive at lambda = decode_batch * rounds / decode duration; a
    // round departs once iterative_batch requests accumulate.
    const double lambda =
        static_cast<double>(schedule.decode_batch) * iter_rounds /
        (static_cast<double>(w.decode_tokens) * decode_perf.latency);
    const double wait =
        (static_cast<double>(schedule.iterative_batch) - 1.0) / (2.0 * lambda);
    const double stall_per_round =
        iter_retrieval.latency + ingest.latency + wait;
    const double stall_total = iter_rounds * stall_per_round;
    tpot += stall_total / static_cast<double>(w.decode_tokens);
    decode_request_throughput =
        static_cast<double>(schedule.decode_batch) /
        (static_cast<double>(w.decode_tokens) * decode_perf.latency +
         stall_total);
  }
  min_throughput = std::min(min_throughput, decode_request_throughput);

  // --- Assembly. ---
  if (schedule.AllocatedXpus() > cluster_.TotalXpus()) {
    perf.feasible = false;
    return perf;
  }
  perf.ttft = ttft;
  perf.tpot = tpot;
  perf.qps = min_throughput;
  // Chip-equivalent accounting: hyperscale retrieval reserves its
  // database hosts whole (the XPUs riding on them are usable by the
  // pipeline, so the footprint is the max of the two, not the sum).
  perf.chip_equivalents =
      std::max(schedule.AllocatedXpus(),
               schema_.retrieval_enabled
                   ? RetrievalChipEquivalents(schedule.retrieval_servers)
                   : 0);
  perf.qps_per_chip = perf.qps / perf.chip_equivalents;
  return perf;
}

double
PipelineModel::BurstAverageTtft(const Schedule& schedule,
                                int64_t burst) const {
  RAGO_REQUIRE(burst > 0, "burst must be positive");
  schedule.Validate(chain_.size());

  // Pipeline nodes: chain groups plus the retrieval tier, each with a
  // first-batch latency and a steady drain rate.
  struct PipeNode {
    double latency = 0.0;
    double rate = 0.0;
    int64_t batch = 1;
  };
  std::vector<PipeNode> nodes(schedule.group_chips.size());
  for (size_t i = 0; i < chain_.size(); ++i) {
    const int g = schedule.chain_group[i];
    const int64_t batch =
        std::min<int64_t>(schedule.chain_batch[i], burst);
    const StagePerf stage_perf = EvalChainStage(
        chain_[i], schedule.group_chips[static_cast<size_t>(g)], batch);
    auto& node = nodes[static_cast<size_t>(g)];
    node.latency += stage_perf.latency;
    node.rate = node.rate == 0.0
                    ? stage_perf.throughput
                    : 1.0 / (1.0 / node.rate + 1.0 / stage_perf.throughput);
    node.batch = std::max(node.batch, batch);
  }
  if (schema_.retrieval_enabled) {
    const int64_t batch = std::min<int64_t>(schedule.retrieval_batch, burst);
    const StagePerf r =
        EvalRetrieval(static_cast<int>(batch), schedule.retrieval_servers);
    PipeNode node;
    node.latency = r.latency;
    node.rate = r.throughput;
    node.batch = batch;
    nodes.push_back(node);
  }

  double first_wave = 0.0;
  double min_rate = std::numeric_limits<double>::infinity();
  int64_t min_batch = burst;
  for (const PipeNode& node : nodes) {
    first_wave += node.latency;
    min_rate = std::min(min_rate, node.rate);
    min_batch = std::min(min_batch, node.batch);
  }
  // Requests stream through in micro-batch waves: the first wave sees
  // the raw pipeline latency, later waves queue behind the bottleneck.
  const double extra = static_cast<double>(burst - min_batch) / min_rate;
  return first_wave + 0.5 * std::max(0.0, extra);
}

std::vector<StageShare>
PipelineModel::TimeBreakdown() const {
  std::vector<StageShare> shares;
  const int max_chips = NextPowerOfTwo(cluster_.TotalXpus());

  // Chip-seconds per request for an XPU stage: minimize chips/thpt
  // over power-of-two chip counts and batch sizes.
  auto xpu_chip_seconds = [&](StageType stage, bool decode) {
    double best = std::numeric_limits<double>::infinity();
    for (int chips = 1; chips <= max_chips; chips *= 2) {
      for (int64_t batch = 1; batch <= 1024; batch *= 2) {
        const StagePerf p =
            decode ? EvalDecode(chips, batch)
                   : EvalChainStage(stage, chips, batch);
        if (p.feasible) {
          best = std::min(best, chips / p.throughput);
        }
      }
    }
    return best;
  };

  for (StageType stage : schema_.AllStages()) {
    StageShare share;
    share.stage = stage;
    if (stage == StageType::kRetrieval) {
      // Saturated retrieval tier on the minimum server count. Tier
      // seconds per request, converted to host-server seconds and then
      // to XPU-equivalents (4 XPUs ride on each host). Brute-force
      // search runs on a single shared host.
      const int servers = MinRetrievalServers();
      const StagePerf p = EvalRetrieval(/*request_batch=*/1024, servers);
      const double tier_seconds_per_request =
          schema_.retrieval.retrievals_per_sequence / p.throughput;
      const int tier_servers = schema_.retrieval.brute_force ? 1 : servers;
      share.chip_seconds = tier_seconds_per_request * tier_servers *
                           cluster_.xpus_per_server;
    } else if (stage == StageType::kDecode) {
      share.chip_seconds = xpu_chip_seconds(stage, /*decode=*/true);
    } else {
      share.chip_seconds = xpu_chip_seconds(stage, /*decode=*/false);
    }
    shares.push_back(share);
  }

  double total = 0.0;
  for (const StageShare& share : shares) {
    total += share.chip_seconds;
  }
  for (StageShare& share : shares) {
    share.fraction = share.chip_seconds / total;
  }
  return shares;
}

}  // namespace rago::core
