/**
 * @file schema.h
 * RAGSchema: the paper's structured RAG workload abstraction.
 *
 * RAGSchema (paper §3.2, Table 1) captures (1) which optional pipeline
 * components are present — document encoder, query rewriter, reranker —
 * and (2) the performance-relevant configuration of each: model sizes,
 * database size and dimensionality, queries per retrieval, and
 * iterative retrieval frequency. Together with the workload's sequence
 * lengths it fully determines serving cost under the RAGO models.
 */
#ifndef RAGO_CORE_SCHEMA_H
#define RAGO_CORE_SCHEMA_H

#include <cstdint>
#include <optional>
#include <vector>

#include "core/stage.h"
#include "models/transformer.h"

namespace rago::core {

/// Retrieval-side configuration (paper Table 1 rows 2-5).
struct RetrievalConfig {
  int64_t num_db_vectors = 64'000'000'000;  ///< Database vector count.
  int vector_dim = 768;                     ///< Embedding dimensionality.
  double pq_bytes_per_vector = 96.0;        ///< Quantized bytes per vector.
  double scan_fraction = 0.001;             ///< P_scan (ANN search).
  int queries_per_retrieval = 1;            ///< Query vectors per retrieval.
  int retrievals_per_sequence = 1;          ///< >1 enables iterative mode.
  /// Exact scan instead of ANN (small per-request databases, Case II).
  bool brute_force = false;
  /// Bytes per dimension for brute-force storage (fp16).
  double brute_force_bytes_per_dim = 2.0;
};

/// Token-length assumptions (paper §4 "LLM sequence lengths").
struct WorkloadConfig {
  int question_tokens = 32;    ///< User question length.
  int prefix_tokens = 512;     ///< Question + retrieved content.
  int decode_tokens = 256;     ///< Generated answer length.
  int passage_tokens = 100;    ///< Tokens per retrieved passage.
  int neighbors = 5;           ///< Passages appended to the prompt.
  int rerank_candidates = 16;  ///< Passages scored by the reranker.
  int rewrite_output_tokens = 32;   ///< Rewriter generation length.
  int64_t context_tokens = 0;       ///< Long-context upload (Case II).
  int encode_chunk_tokens = 128;    ///< Chunk size for database encoding.
  /**
   * Fraction of the retrieved-content prompt whose KV cache can be
   * reused from a document-level cache (RAGCache / CacheBlend-style,
   * paper §8). Reduces prefix compute for the cached tokens; 0
   * disables the optimization.
   */
  double prefix_cache_hit_rate = 0.0;
};

/// Complete RAG serving workload description.
struct RAGSchema {
  std::optional<models::TransformerConfig> document_encoder;
  std::optional<models::TransformerConfig> query_rewriter;
  std::optional<models::TransformerConfig> reranker;
  models::TransformerConfig generative_llm;
  RetrievalConfig retrieval;
  WorkloadConfig workload;
  /// Disable retrieval entirely (LLM-only baselines in Fig. 5/6).
  bool retrieval_enabled = true;

  /**
   * XPU stages up to and including prefix, in pipeline order (the
   * candidates for collocation, paper Fig. 13). Excludes retrieval
   * (CPU) and decode (always disaggregated).
   */
  std::vector<StageType> PrefixChainStages() const;

  /// All stages in execution order, including retrieval and decode.
  std::vector<StageType> AllStages() const;

  /// True if decoding is punctuated by mid-generation retrievals.
  bool IterativeRetrieval() const {
    return retrieval_enabled && retrieval.retrievals_per_sequence > 1;
  }

  /// Throws ConfigError on inconsistent configurations.
  void Validate() const;
};

/// Case I (paper §5.1): hyperscale retrieval, no auxiliary models.
RAGSchema MakeHyperscaleSchema(int llm_billions, int queries_per_retrieval);

/// Case II (paper §5.2): long-context processing with document encoder.
RAGSchema MakeLongContextSchema(int llm_billions, int64_t context_tokens);

/// Case III (paper §5.3): hyperscale with iterative retrievals.
RAGSchema MakeIterativeSchema(int llm_billions, int retrievals_per_sequence);

/// Case IV (paper §5.4): hyperscale plus 8B rewriter and 120M reranker.
RAGSchema MakeRewriterRerankerSchema(int llm_billions);

/// LLM-only serving (no retrieval), question-length prompt.
RAGSchema MakeLlmOnlySchema(int llm_billions);

/// Long-context LLM-only variant: the full context goes in the prompt.
RAGSchema MakeLongContextLlmOnlySchema(int llm_billions,
                                       int64_t context_tokens);

}  // namespace rago::core

#endif  // RAGO_CORE_SCHEMA_H
