/**
 * @file pipeline_model.h
 * End-to-end RAG serving performance model.
 *
 * Combines the inference roofline model (src/models) and the retrieval
 * cost models (src/retrieval/perf) into per-stage costs and assembles
 * them into end-to-end metrics (paper §3.3): TTFT is the sum of stage
 * latencies up to and including the main-LLM prefix; pipeline QPS is
 * the minimum stage throughput; QPS/Chip normalizes by the allocated
 * XPUs plus the XPU-equivalents of the dedicated retrieval hosts.
 */
#ifndef RAGO_CORE_PIPELINE_MODEL_H
#define RAGO_CORE_PIPELINE_MODEL_H

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/schedule.h"
#include "core/schema.h"
#include "core/stage_perf.h"
#include "hardware/cluster.h"
#include "retrieval/perf/retrieval_model.h"

namespace rago::core {

/// End-to-end metrics of one schedule.
struct EndToEndPerf {
  double ttft = 0.0;          ///< Seconds to first token (batch flow).
  double tpot = 0.0;          ///< Worst-case seconds per output token.
  double qps = 0.0;           ///< Max sustained requests per second.
  double qps_per_chip = 0.0;  ///< QPS / chip-equivalents.
  int chip_equivalents = 0;   ///< Allocated XPUs + retrieval equivalent.
  bool feasible = false;
};

/**
 * Pluggable source of per-stage costs for schedule evaluation. The
 * optimizer supplies memoized lookups here (Algorithm 1 step 1) so
 * millions of schedules can be assembled without re-running the
 * roofline models; the default provider calls the live evaluators.
 */
struct StagePerfProvider {
  std::function<StagePerf(StageType, int chips, int64_t batch)> chain;
  std::function<StagePerf(int chips, int64_t batch)> decode;
  std::function<StagePerf(int request_batch, int servers)> retrieval;
  /// Prefix ingestion of newly retrieved content (iterative rounds).
  std::function<StagePerf(int chips, int64_t batch)> ingest;
};

/// Resource-normalized time share of one stage (for breakdown plots).
struct StageShare {
  StageType stage;
  /// Chip-equivalent-seconds consumed per request at peak efficiency.
  double chip_seconds = 0.0;
  double fraction = 0.0;  ///< Share of the pipeline total.
};

/**
 * Performance model for one RAGSchema on one cluster.
 *
 * Thread-compatible: all evaluation methods are const and instances
 * hold only immutable configuration.
 */
class PipelineModel {
 public:
  PipelineModel(RAGSchema schema, ClusterConfig cluster);

  const RAGSchema& schema() const { return schema_; }
  const ClusterConfig& cluster() const { return cluster_; }

  /// Prefix-chain stages (collocation candidates), in pipeline order.
  const std::vector<StageType>& chain() const { return chain_; }

  /**
   * Cost of one XPU prefix-chain stage at (chips, batch). Latency is
   * one batch's processing time; throughput is requests/second.
   */
  StagePerf EvalChainStage(StageType stage, int chips, int64_t batch) const;

  /**
   * Prefix-stage cost with an explicit document-level KV cache hit
   * rate in [0, 1] overriding the schema's assumed
   * `prefix_cache_hit_rate` knob. The serving runtime prices each
   * prefix batch with the *measured* per-batch hit fraction from its
   * cache tier through this entry point; EvalChainStage(kPrefix, ...)
   * is equivalent to calling this with the schema knob. The
   * hit_rate = 1.0 limit prices the question-only prompt (clamped to
   * at least one token), never a zero/NaN prefix time.
   */
  StagePerf EvalPrefixCached(int chips, int64_t batch,
                             double hit_rate) const;

  /// Cost of the main-LLM decode stage (continuous batching).
  StagePerf EvalDecode(int chips, int64_t batch) const;

  /**
   * Retrieval cost for a batch of `request_batch` requests on
   * `servers` hosts (each request issues queries_per_retrieval query
   * vectors). Latency covers the batch; throughput is requests/s.
   */
  StagePerf EvalRetrieval(int request_batch, int servers) const;

  /// Prefix cost of ingesting newly retrieved passages mid-decode
  /// (iterative retrieval rounds, Case III).
  StagePerf EvalIngestPrefix(int chips, int64_t batch) const;

  /// Full evaluation of a scheduling policy.
  EndToEndPerf Evaluate(const Schedule& schedule) const;

  /// Evaluation with externally supplied (e.g. memoized) stage costs.
  EndToEndPerf EvaluateWith(const Schedule& schedule,
                            const StagePerfProvider& provider) const;

  /// Provider backed by the live evaluators of this model.
  StagePerfProvider LiveProvider() const;

  /**
   * LiveProvider with the retrieval lookup replaced by `model` — e.g.
   * a MeasuredRetrievalModel calibrated from real sharded scans on the
   * serving index, or costs derived from the roofline profiler
   * (retrieval/perf/roofline.h). A batch of `request_batch` requests
   * issues queries_per_retrieval queries each, matching EvalRetrieval;
   * the server count still gates database-capacity feasibility, but
   * pricing comes entirely from `model` (measured costs describe the
   * deployment they were calibrated on). Borrowed: `model` must
   * outlive the provider and be thread-compatible (Optimizer::Search
   * profiles concurrently).
   */
  StagePerfProvider ProviderWithRetrievalModel(
      const retrieval::RetrievalModel& model) const;

  /**
   * Average TTFT when a burst of `burst` requests arrives at once and
   * pre-decode stages process it in micro-batches per the schedule's
   * batching policy (paper Fig. 14/19). Requests stream through
   * disaggregated groups; collocated stages time-multiplex.
   */
  double BurstAverageTtft(const Schedule& schedule, int64_t burst) const;

  /**
   * Resource-normalized time breakdown across all pipeline stages
   * (paper Fig. 6c/d, 8b, 11): each stage's chip-equivalent-seconds
   * per request when running at its own peak QPS/Chip.
   */
  std::vector<StageShare> TimeBreakdown() const;

  /// Chip-equivalents reserved by the retrieval tier (0 if brute-force
  /// in-host or retrieval disabled).
  int RetrievalChipEquivalents(int servers) const;

  /// Minimum servers that can hold the (quantized) database.
  int MinRetrievalServers() const;

  /**
   * Index into chain() of the first stage executed after retrieval
   * (rerank if present, else prefix). If the stage before retrieval is
   * collocated with it, the shared group pauses for retrieval (paper
   * §6.1), which Evaluate charges against that group's utilization.
   */
  size_t PostRetrievalChainIndex() const;

  /// Average decode context length (prompt + half the generation).
  int64_t AvgDecodeContext() const;
  /// Maximum decode context length (prompt + full generation).
  int64_t MaxDecodeContext() const;

 private:
  const models::InferenceModel& ModelFor(StageType stage) const;

  RAGSchema schema_;
  ClusterConfig cluster_;
  std::vector<StageType> chain_;
  std::unique_ptr<models::InferenceModel> llm_;
  std::unique_ptr<models::InferenceModel> encoder_;
  std::unique_ptr<models::InferenceModel> rewriter_;
  std::unique_ptr<models::InferenceModel> reranker_;
  std::unique_ptr<retrieval::RetrievalModel> retrieval_single_server_;
};

}  // namespace rago::core

#endif  // RAGO_CORE_PIPELINE_MODEL_H
