#include "core/schema.h"

#include "common/check.h"
#include "common/math_util.h"

namespace rago::core {

std::vector<StageType>
RAGSchema::PrefixChainStages() const {
  std::vector<StageType> chain;
  if (document_encoder.has_value()) {
    chain.push_back(StageType::kDatabaseEncode);
  }
  if (query_rewriter.has_value()) {
    chain.push_back(StageType::kRewritePrefix);
    chain.push_back(StageType::kRewriteDecode);
  }
  if (reranker.has_value()) {
    chain.push_back(StageType::kRerank);
  }
  chain.push_back(StageType::kPrefix);
  return chain;
}

std::vector<StageType>
RAGSchema::AllStages() const {
  std::vector<StageType> all = PrefixChainStages();
  // Retrieval happens after query rewriting: insert it before the
  // rerank stage (or before prefix if there is no reranker), then
  // append decode.
  if (retrieval_enabled) {
    auto pos = all.end();
    for (auto it = all.begin(); it != all.end(); ++it) {
      if (*it == StageType::kRerank || *it == StageType::kPrefix) {
        pos = it;
        break;
      }
    }
    all.insert(pos, StageType::kRetrieval);
  }
  all.push_back(StageType::kDecode);
  return all;
}

void
RAGSchema::Validate() const {
  generative_llm.Validate();
  RAGO_REQUIRE(generative_llm.kind == models::ModelKind::kDecoder,
               "generative LLM must be a decoder");
  if (document_encoder.has_value()) {
    document_encoder->Validate();
    RAGO_REQUIRE(document_encoder->kind == models::ModelKind::kEncoder,
                 "document encoder must be an encoder model");
    RAGO_REQUIRE(workload.context_tokens > 0,
                 "document encoder requires context_tokens > 0");
  }
  if (query_rewriter.has_value()) {
    query_rewriter->Validate();
    RAGO_REQUIRE(query_rewriter->kind == models::ModelKind::kDecoder,
                 "query rewriter must be a decoder");
    RAGO_REQUIRE(workload.rewrite_output_tokens > 0,
                 "rewriter output length must be positive");
  }
  if (reranker.has_value()) {
    reranker->Validate();
    RAGO_REQUIRE(reranker->kind == models::ModelKind::kEncoder,
                 "reranker must be an encoder model");
    RAGO_REQUIRE(workload.rerank_candidates > 0,
                 "rerank candidate count must be positive");
  }
  if (retrieval_enabled) {
    RAGO_REQUIRE(retrieval.num_db_vectors > 0,
                 "retrieval database must contain vectors");
    RAGO_REQUIRE(retrieval.queries_per_retrieval > 0,
                 "queries per retrieval must be positive");
    RAGO_REQUIRE(retrieval.retrievals_per_sequence > 0,
                 "retrievals per sequence must be positive");
    RAGO_REQUIRE(
        retrieval.brute_force ||
            (retrieval.scan_fraction > 0 && retrieval.scan_fraction <= 1.0),
        "ANN scan fraction must be in (0, 1]");
  }
  RAGO_REQUIRE(workload.prefix_tokens > 0 && workload.decode_tokens > 0,
               "prefix and decode lengths must be positive");
  // Closed interval: a *measured* hit rate on a repeat-only trace
  // legitimately reaches exactly 1.0 (every retrieved document
  // resident), so the boundary is included on both ends.
  RAGO_REQUIRE(workload.prefix_cache_hit_rate >= 0.0 &&
                   workload.prefix_cache_hit_rate <= 1.0,
               "prefix cache hit rate must be in [0, 1]");
}

namespace {

WorkloadConfig DefaultRagWorkload() {
  return WorkloadConfig{};  // Paper defaults: 512 prefix / 256 decode.
}

}  // namespace

RAGSchema
MakeHyperscaleSchema(int llm_billions, int queries_per_retrieval) {
  RAGSchema schema;
  schema.generative_llm = models::LlamaBySize(llm_billions);
  schema.retrieval.queries_per_retrieval = queries_per_retrieval;
  schema.workload = DefaultRagWorkload();
  schema.Validate();
  return schema;
}

RAGSchema
MakeLongContextSchema(int llm_billions, int64_t context_tokens) {
  RAGSchema schema;
  schema.generative_llm = models::LlamaBySize(llm_billions);
  schema.document_encoder = models::Encoder120M();
  schema.workload = DefaultRagWorkload();
  schema.workload.context_tokens = context_tokens;
  // Per-request database: one vector per encoded chunk, fp16 storage,
  // searched exactly (paper uses brute-force kNN here).
  schema.retrieval.brute_force = true;
  schema.retrieval.num_db_vectors =
      CeilDiv(context_tokens, schema.workload.encode_chunk_tokens);
  schema.retrieval.pq_bytes_per_vector = 0.0;  // Unused in brute force.
  schema.Validate();
  return schema;
}

RAGSchema
MakeIterativeSchema(int llm_billions, int retrievals_per_sequence) {
  RAGSchema schema = MakeHyperscaleSchema(llm_billions, 1);
  schema.retrieval.retrievals_per_sequence = retrievals_per_sequence;
  schema.Validate();
  return schema;
}

RAGSchema
MakeRewriterRerankerSchema(int llm_billions) {
  RAGSchema schema = MakeHyperscaleSchema(llm_billions, 1);
  schema.query_rewriter = models::Llama8B();
  schema.reranker = models::Encoder120M();
  schema.Validate();
  return schema;
}

RAGSchema
MakeLlmOnlySchema(int llm_billions) {
  RAGSchema schema;
  schema.generative_llm = models::LlamaBySize(llm_billions);
  schema.retrieval_enabled = false;
  schema.workload = DefaultRagWorkload();
  // Without retrieved passages the prompt is just the question.
  schema.workload.prefix_tokens = schema.workload.question_tokens;
  schema.Validate();
  return schema;
}

RAGSchema
MakeLongContextLlmOnlySchema(int llm_billions, int64_t context_tokens) {
  RAGSchema schema;
  schema.generative_llm = models::LlamaBySize(llm_billions);
  schema.retrieval_enabled = false;
  schema.workload = DefaultRagWorkload();
  schema.workload.context_tokens = context_tokens;
  schema.workload.prefix_tokens =
      static_cast<int>(context_tokens) + schema.workload.question_tokens;
  schema.Validate();
  return schema;
}

}  // namespace rago::core
