/**
 * @file stage.h
 * RAG pipeline stage identifiers.
 *
 * A RAG pipeline (paper Fig. 3) is a fixed-order chain of optional
 * stages: database encode -> query rewrite (prefix, then decode) ->
 * retrieval -> rerank -> main-LLM prefix -> main-LLM decode.
 * Retrieval runs on host CPUs; every other stage runs on XPUs.
 */
#ifndef RAGO_CORE_STAGE_H
#define RAGO_CORE_STAGE_H

#include <string>

namespace rago::core {

/// Pipeline stage kinds, in canonical execution order.
enum class StageType {
  kDatabaseEncode,  ///< Encode uploaded context into database vectors.
  kRewritePrefix,   ///< Query rewriter prompt computation.
  kRewriteDecode,   ///< Query rewriter autoregressive generation.
  kRetrieval,       ///< Vector search on CPU servers.
  kRerank,          ///< Score retrieved passages with an encoder.
  kPrefix,          ///< Main LLM prompt computation (emits first token).
  kDecode,          ///< Main LLM autoregressive generation.
};

/// Human-readable stage name for reports.
inline const char* StageName(StageType type) {
  switch (type) {
    case StageType::kDatabaseEncode:
      return "encode";
    case StageType::kRewritePrefix:
      return "rewrite-prefix";
    case StageType::kRewriteDecode:
      return "rewrite-decode";
    case StageType::kRetrieval:
      return "retrieval";
    case StageType::kRerank:
      return "rerank";
    case StageType::kPrefix:
      return "prefix";
    case StageType::kDecode:
      return "decode";
  }
  return "unknown";
}

}  // namespace rago::core

#endif  // RAGO_CORE_STAGE_H
