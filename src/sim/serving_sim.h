/**
 * @file serving_sim.h
 * Trace-driven discrete-event simulation of a RAG serving schedule.
 *
 * The analytical pipeline model (core/pipeline_model.h) predicts
 * steady-state throughput and batch-flow latency in closed form. This
 * simulator executes the same schedule event by event against an
 * arrival trace: requests queue per stage, collocation groups
 * time-multiplex their member stages (paper Fig. 14), the retrieval
 * tier serves fixed-size query batches, and decode runs continuous
 * batching. It serves two purposes:
 *  - validation: at saturation the measured throughput must approach
 *    the analytical QPS; at low load the TTFT must approach the sum
 *    of stage latencies (tested in tests/test_serving_sim.cc);
 *  - queueing behavior the closed form cannot express (burst backlogs,
 *    partially filled batches under light load).
 */
#ifndef RAGO_SIM_SERVING_SIM_H
#define RAGO_SIM_SERVING_SIM_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline_model.h"
#include "core/schedule.h"
#include "retrieval/perf/retrieval_model.h"
#include "serving/obs/flight_recorder.h"
#include "serving/obs/slo_alerts.h"
#include "serving/obs/timeseries.h"
#include "serving/obs/trace.h"
#include "serving/runtime/workload.h"

namespace rago::sim {

// The arrival-trace type and its generators live in the shared
// scenario library (serving/runtime/workload.h) so the DES and the
// online runtime consume identical traffic; these aliases keep the
// historical sim:: spellings working.
using ArrivalTrace = ::rago::runtime::ArrivalTrace;

/// Uniform (open-loop) arrivals: `count` requests at fixed `qps`.
inline ArrivalTrace UniformTrace(int count, double qps) {
  return ::rago::runtime::UniformTrace(count, qps);
}

/// Poisson arrivals at rate `qps`, seeded.
inline ArrivalTrace PoissonTrace(int count, double qps, uint64_t seed) {
  return ::rago::runtime::PoissonTrace(count, qps, seed);
}

/// One burst of `count` simultaneous arrivals at t = 0.
inline ArrivalTrace BurstTrace(int count) {
  return ::rago::runtime::BurstTrace(count);
}

/// Simulation knobs.
struct ServingSimOptions {
  /// Maximum time a stage waits to fill its batch before flushing a
  /// partial one (prevents starvation under light load). Must be
  /// non-negative (validated by SimulateServing).
  double batch_timeout = 0.050;
  /**
   * Pluggable retrieval tier: when set, retrieval service times come
   * from this model (e.g. a MeasuredRetrievalModel calibrated from a
   * functional sharded scan) instead of the pipeline model's
   * analytical EvalRetrieval. Not owned; must outlive the call.
   */
  const retrieval::RetrievalModel* retrieval_model = nullptr;
  /**
   * Optional span-trace recorder (serving/obs/trace.h): when set, the
   * simulation appends arrival/queue/batch/stage/decode spans on the
   * virtual clock — the same track layout the online runtime emits, so
   * DES and runtime traces are directly comparable in chrome://tracing.
   * Observation-only: every ServingSimResult field is identical with
   * tracing on or off. Not owned; must outlive the call.
   */
  obs::TraceRecorder* trace = nullptr;
  /**
   * Optional windowed telemetry sink (serving/obs/timeseries.h): the
   * simulation rolls offered/completed counts, TTFT/TPOT latencies,
   * queue depths, and server busy time into fixed virtual-clock
   * windows — the same rollup shape the online runtime feeds, so DES
   * and runtime time series compare window for window.
   * Observation-only. Not owned; must outlive the call.
   */
  obs::TelemetryTimeSeries* timeseries = nullptr;
  /**
   * Optional burn-rate alert engine (serving/obs/slo_alerts.h); fed
   * every closed telemetry window. Requires `timeseries`. The sim has
   * no outcome digest, so `fold_into_digest` has no effect here.
   * Not owned; must outlive the call.
   */
  obs::SloAlertEngine* alerts = nullptr;
  /**
   * Optional flight recorder (serving/obs/flight_recorder.h): a
   * bounded ring of recent begin/window/alert notes, dumped to
   * `flight_dump_path` (when non-empty) at the end of the run and on
   * any exception unwinding the simulation. Not owned.
   */
  obs::FlightRecorder* flight = nullptr;
  std::string flight_dump_path;
  /**
   * SLO bounds used to classify completions for windowed attainment
   * and burn-rate alerting. <= 0 disables that bound. Kept as plain
   * doubles (not runtime::SloTarget) so the sim layer stays
   * independent of the online runtime.
   */
  double slo_ttft_seconds = 0.0;
  double slo_tpot_seconds = 0.0;
};

/// Aggregate results of one simulation run. Percentiles use the
/// shared nearest-rank convention of common/histogram.h (the same
/// implementation the online runtime reports through).
struct ServingSimResult {
  int64_t completed = 0;
  double makespan = 0.0;        ///< Last completion time (s).
  double throughput = 0.0;      ///< Completed / makespan.
  double avg_ttft = 0.0;        ///< Mean time to first token (s).
  double p50_ttft = 0.0;        ///< Median TTFT (s).
  double p95_ttft = 0.0;        ///< 95th-percentile TTFT (s).
  double p99_ttft = 0.0;        ///< 99th-percentile TTFT (s).
  double avg_tpot = 0.0;        ///< Mean time per output token (s).
  double p50_tpot = 0.0;        ///< Median TPOT (s).
  double p95_tpot = 0.0;        ///< 95th-percentile TPOT (s).
  double p99_tpot = 0.0;        ///< 99th-percentile TPOT (s).
  /// Busy-time fraction of each collocation group, indexed by group.
  std::vector<double> group_utilization;
  double retrieval_utilization = 0.0;
  double decode_utilization = 0.0;
};

/**
 * Executes `schedule` on `model` against the arrival trace.
 * Deterministic; all stage service times come from the same cost
 * models the optimizer uses.
 */
ServingSimResult SimulateServing(const core::PipelineModel& model,
                                 const core::Schedule& schedule,
                                 const ArrivalTrace& trace,
                                 const ServingSimOptions& options = {});

}  // namespace rago::sim

#endif  // RAGO_SIM_SERVING_SIM_H
