/**
 * @file iterative_sim.h
 * Discrete-event simulation of continuous-batching decode with
 * decoder-initiated iterative retrievals (paper §5.3, Figs. 9-10).
 *
 * A pool of `decode_batch` sequence slots decodes step by step. Each
 * sequence carries mid-generation retrieval triggers at uniform-random
 * token positions; on trigger it leaves the decode batch and queues
 * for a retrieval+prefix round, which departs once `iterative_batch`
 * requests accumulate (or on deadlock flush). Decoding of the other
 * sequences continues meanwhile — the modeled cost of batching is the
 * idle time sequences spend waiting for peers, exactly the effect the
 * paper isolates in Fig. 10 by setting round latency to zero.
 */
#ifndef RAGO_SIM_ITERATIVE_SIM_H
#define RAGO_SIM_ITERATIVE_SIM_H

#include <cstdint>
#include <functional>

namespace rago::sim {

/// Inputs of the iterative-retrieval decode simulation.
struct IterativeSimConfig {
  int decode_batch = 64;       ///< Continuous-batching slots.
  int iterative_batch = 4;     ///< Retrieval round departs at this size.
  int decode_tokens = 256;     ///< Tokens generated per sequence.
  /// Total retrievals per sequence; the first happens before decoding
  /// (initial retrieval), so `retrievals_per_sequence - 1` rounds
  /// interrupt generation.
  int retrievals_per_sequence = 4;
  double step_latency = 1.0;       ///< Seconds per decode step.
  double round_latency = 0.0;      ///< Retrieval + prefix per round.
  int num_sequences = 512;         ///< Sequences to complete (horizon).
  uint64_t seed = 42;              ///< Trigger-position randomness.
};

/// Outputs of the simulation.
struct IterativeSimResult {
  double avg_tpot = 0.0;    ///< Mean per-sequence TPOT (s/token).
  double worst_tpot = 0.0;  ///< Max per-sequence TPOT.
  /// avg_tpot divided by the no-retrieval step latency (Fig. 10's
  /// "normalized decoding latency").
  double normalized_latency = 0.0;
  double total_time = 0.0;      ///< Simulated makespan in seconds.
  double throughput = 0.0;      ///< Sequences per second.
  int64_t rounds_executed = 0;  ///< Retrieval+prefix rounds fired.
  int64_t flushed_rounds = 0;   ///< Rounds fired below target batch.
};

/// Runs the simulation; deterministic for a fixed config (incl. seed).
IterativeSimResult SimulateIterativeDecode(const IterativeSimConfig& config);

}  // namespace rago::sim

#endif  // RAGO_SIM_ITERATIVE_SIM_H
