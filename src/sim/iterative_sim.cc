#include "sim/iterative_sim.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace rago::sim {
namespace {

/// Per-sequence simulation state.
struct Sequence {
  double start_time = 0.0;
  int tokens = 0;  ///< Tokens generated so far.
  std::vector<int> triggers;  ///< Ascending token positions; next at back.
  bool active = false;        ///< Currently in the decode batch.

  bool TriggersAt(int position) const {
    return !triggers.empty() && triggers.back() == position;
  }
};

/// Draws `count` distinct ascending trigger positions in [1, tokens-1].
std::vector<int> DrawTriggers(int count, int tokens, Rng& rng) {
  std::vector<int> positions;
  if (count <= 0 || tokens <= 2) {
    return positions;
  }
  // Sample without replacement via rejection (count << tokens).
  while (static_cast<int>(positions.size()) < count) {
    const int p = 1 + static_cast<int>(rng.NextBounded(
                          static_cast<uint64_t>(tokens - 1)));
    if (std::find(positions.begin(), positions.end(), p) ==
        positions.end()) {
      positions.push_back(p);
    }
  }
  // Descending so the soonest trigger sits at the back for O(1) pops.
  std::sort(positions.rbegin(), positions.rend());
  return positions;
}

}  // namespace

IterativeSimResult
SimulateIterativeDecode(const IterativeSimConfig& config) {
  RAGO_REQUIRE(config.decode_batch > 0, "decode batch must be positive");
  RAGO_REQUIRE(config.iterative_batch > 0,
               "iterative batch must be positive");
  RAGO_REQUIRE(config.decode_tokens > 1, "need at least two decode tokens");
  RAGO_REQUIRE(config.retrievals_per_sequence >= 1,
               "at least the initial retrieval is required");
  RAGO_REQUIRE(config.step_latency > 0, "step latency must be positive");
  RAGO_REQUIRE(config.num_sequences > 0, "horizon must be positive");
  RAGO_REQUIRE(config.retrievals_per_sequence - 1 <= config.decode_tokens - 2,
               "more triggers than distinct token positions");

  const int rounds_per_seq = config.retrievals_per_sequence - 1;
  Rng rng(config.seed);

  // Slot-based continuous batching: finished sequences are replaced
  // immediately until num_sequences have been started.
  std::vector<Sequence> sequences;
  sequences.reserve(static_cast<size_t>(config.num_sequences));
  int started = 0;
  auto start_sequence = [&](double now) -> int {
    Sequence seq;
    seq.start_time = now;
    seq.active = true;
    seq.triggers = DrawTriggers(rounds_per_seq, config.decode_tokens, rng);
    sequences.push_back(std::move(seq));
    ++started;
    return static_cast<int>(sequences.size()) - 1;
  };

  double now = 0.0;
  std::vector<int> active;   // Sequence ids currently decoding.
  std::vector<int> queue;    // Waiting for a retrieval round.
  // In-flight rounds: (completion time, members).
  struct Round {
    double done = 0.0;
    std::vector<int> members;
  };
  std::vector<Round> in_flight;

  for (int i = 0; i < config.decode_batch &&
                  started < config.num_sequences; ++i) {
    active.push_back(start_sequence(now));
  }

  IterativeSimResult result;
  std::vector<double> tpots;
  tpots.reserve(static_cast<size_t>(config.num_sequences));
  int completed = 0;

  auto fire_round = [&](bool flush) {
    Round round;
    round.done = now + config.round_latency;
    const int take = flush ? static_cast<int>(queue.size())
                           : config.iterative_batch;
    round.members.assign(queue.begin(), queue.begin() + take);
    queue.erase(queue.begin(), queue.begin() + take);
    ++result.rounds_executed;
    if (flush && take < config.iterative_batch) {
      ++result.flushed_rounds;
    }
    in_flight.push_back(std::move(round));
  };

  while (completed < config.num_sequences) {
    // Fire full rounds, then re-admit completed rounds; the order
    // matters so zero-latency rounds rejoin before the next step.
    while (static_cast<int>(queue.size()) >= config.iterative_batch) {
      fire_round(/*flush=*/false);
    }
    for (size_t r = 0; r < in_flight.size();) {
      if (in_flight[r].done <= now) {
        for (int id : in_flight[r].members) {
          sequences[static_cast<size_t>(id)].active = true;
          active.push_back(id);
        }
        in_flight.erase(in_flight.begin() + static_cast<long>(r));
      } else {
        ++r;
      }
    }

    if (active.empty()) {
      if (!in_flight.empty()) {
        // Fast-forward to the earliest round completion.
        double earliest = std::numeric_limits<double>::infinity();
        for (const Round& round : in_flight) {
          earliest = std::min(earliest, round.done);
        }
        now = earliest;
        continue;
      }
      // Deadlock: everyone is queued but the batch will never fill.
      RAGO_CHECK(!queue.empty(), "simulation stalled with no work");
      fire_round(/*flush=*/true);
      now = std::max(now, in_flight.back().done);
      continue;
    }

    // One decode step for all active sequences.
    now += config.step_latency;
    std::vector<int> still_active;
    still_active.reserve(active.size());
    for (int id : active) {
      Sequence& seq = sequences[static_cast<size_t>(id)];
      ++seq.tokens;
      if (seq.tokens >= config.decode_tokens) {
        // Sequence complete; its slot is refilled immediately.
        seq.active = false;
        tpots.push_back((now - seq.start_time) / config.decode_tokens);
        ++completed;
        if (started < config.num_sequences) {
          still_active.push_back(start_sequence(now));
        }
        continue;
      }
      if (seq.TriggersAt(seq.tokens)) {
        seq.triggers.pop_back();
        seq.active = false;
        queue.push_back(id);
        continue;
      }
      still_active.push_back(id);
    }
    active = std::move(still_active);
  }

  RAGO_CHECK(!tpots.empty(), "no sequences completed");
  double sum = 0.0;
  double worst = 0.0;
  for (double t : tpots) {
    sum += t;
    worst = std::max(worst, t);
  }
  result.avg_tpot = sum / static_cast<double>(tpots.size());
  result.worst_tpot = worst;
  result.normalized_latency = result.avg_tpot / config.step_latency;
  result.total_time = now;
  result.throughput = static_cast<double>(completed) / now;
  return result;
}

}  // namespace rago::sim
