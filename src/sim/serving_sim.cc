#include "sim/serving_sim.h"

#include <algorithm>
#include <deque>
#include <exception>
#include <limits>
#include <queue>
#include <string>

#include "common/check.h"
#include "common/histogram.h"
#include "core/stage.h"

namespace rago::sim {
namespace {

using core::PipelineModel;
using core::Schedule;
using core::StageType;

/// One pipeline processing step in execution order.
struct SimStage {
  StageType type = StageType::kPrefix;
  int server = 0;       ///< Server index (group id, or dedicated ids).
  int64_t batch = 1;    ///< Configured batch size.
  double latency = 0.0; ///< Completion time for one batch.
  /// Time the server is occupied per batch. Pipeline-parallel plans
  /// overlap batches, so the initiation interval (batch / stage
  /// throughput) can be shorter than the completion latency.
  double interval = 0.0;
  std::deque<int> queue;
  /// Parallel to `queue`; maintained only while tracing (queue-wait
  /// spans need each member's enqueue time).
  std::deque<double> enqueue_times;
  double oldest_enqueue = 0.0;
};

struct Request {
  double arrival = 0.0;
  double ttft = -1.0;       ///< Set when the prefix stage completes.
  double decode_start = -1.0;
  double completion = -1.0;
};

/// Event-queue entry.
struct Event {
  double time = 0.0;
  int kind = 0;  // 0 = arrival, 1 = server-done, 2 = flush, 3 = step.
  int a = 0;     // arrival: request id; server-done/flush: stage index.

  friend bool operator>(const Event& lhs, const Event& rhs) {
    if (lhs.time != rhs.time) {
      return lhs.time > rhs.time;
    }
    if (lhs.kind != rhs.kind) {
      return lhs.kind > rhs.kind;  // Prefer arrivals first at ties.
    }
    // Payload ascending: simultaneous arrivals (burst traces) enqueue
    // in request-id order on every standard library, mirroring the
    // runtime's scheduler so the engines stay cross-checkable.
    return lhs.a > rhs.a;
  }
};

}  // namespace

ServingSimResult
SimulateServing(const PipelineModel& model, const Schedule& schedule,
                const ArrivalTrace& trace,
                const ServingSimOptions& options) {
  RAGO_REQUIRE(!trace.arrivals.empty(), "empty arrival trace");
  RAGO_REQUIRE(options.batch_timeout >= 0,
               "batch_timeout must be non-negative");
  RAGO_REQUIRE(options.alerts == nullptr || options.timeseries != nullptr,
               "burn-rate alerting requires a telemetry time-series");
  RAGO_REQUIRE(!model.schema().IterativeRetrieval(),
               "iterative retrieval uses SimulateIterativeDecode");
  schedule.Validate(model.chain().size());

  // --- Build the stage sequence with precomputed service times. ---
  const auto& chain = model.chain();
  std::vector<SimStage> stages;
  const int retrieval_server = schedule.NumGroups();
  size_t chain_index = 0;
  for (StageType type : model.schema().AllStages()) {
    if (type == StageType::kDecode) {
      continue;  // Decode is handled by the continuous-batching pool.
    }
    SimStage stage;
    stage.type = type;
    if (type == StageType::kRetrieval) {
      stage.server = retrieval_server;
      stage.batch = schedule.retrieval_batch;
      if (options.retrieval_model != nullptr) {
        // Swapped-in tier (e.g. measured sharded-scan costs): a batch
        // of requests issues queries_per_retrieval vectors each.
        const int64_t queries =
            stage.batch * model.schema().retrieval.queries_per_retrieval;
        const retrieval::RetrievalCost cost =
            options.retrieval_model->Search(queries);
        stage.latency = cost.latency;
        stage.interval =
            static_cast<double>(queries) / cost.throughput;
      } else {
        const core::StagePerf perf = model.EvalRetrieval(
            static_cast<int>(stage.batch), schedule.retrieval_servers);
        RAGO_REQUIRE(perf.feasible, "retrieval infeasible under schedule");
        stage.latency = perf.latency;
        stage.interval = static_cast<double>(stage.batch) / perf.throughput;
      }
    } else {
      RAGO_CHECK(chain_index < chain.size(), "chain/stage walk mismatch");
      const int group = schedule.chain_group[chain_index];
      stage.server = group;
      stage.batch = schedule.chain_batch[chain_index];
      const core::StagePerf perf = model.EvalChainStage(
          type, schedule.group_chips[static_cast<size_t>(group)],
          stage.batch);
      RAGO_REQUIRE(perf.feasible, "stage infeasible under schedule");
      stage.latency = perf.latency;
      stage.interval = static_cast<double>(stage.batch) / perf.throughput;
      ++chain_index;
    }
    stages.push_back(std::move(stage));
  }
  const int num_servers = retrieval_server + 1;

  const core::StagePerf decode_perf =
      model.EvalDecode(schedule.decode_chips, schedule.decode_batch);
  RAGO_REQUIRE(decode_perf.feasible, "decode infeasible under schedule");
  // Step cadence: the pool emits `batch` tokens per step and sustains
  // the plan's request throughput (pipeline-parallel plans interleave
  // batches, so the cadence can beat the raw step latency).
  const int decode_tokens = model.schema().workload.decode_tokens;
  const double step_latency =
      static_cast<double>(schedule.decode_batch) /
      (decode_perf.throughput * decode_tokens);

  // --- Span tracing (opt-in, observation-only: appends never feed
  // back into scheduling, so results are invariant to `recorder`).
  // Track layout matches the online runtime's so the two engines'
  // traces line up side by side in chrome://tracing. ---
  obs::TraceRecorder* recorder = options.trace;
  const int decode_row = num_servers;
  if (recorder != nullptr) {
    recorder->SetProcessName(0, "servers");
    recorder->SetProcessName(1, "requests");
    for (int g = 0; g < schedule.NumGroups(); ++g) {
      recorder->SetThreadName(0, g, "xpu group " + std::to_string(g));
    }
    recorder->SetThreadName(0, retrieval_server, "retrieval servers");
    recorder->SetThreadName(0, decode_row, "decode pool");
  }

  // --- Windowed telemetry, burn-rate alerting, flight recorder (all
  // opt-in and observation-only; driven on the virtual clock from the
  // serial loop, exactly like the online runtime's wiring, so the two
  // engines' telemetry is directly comparable). ---
  obs::TelemetryTimeSeries* series = options.timeseries;
  obs::SloAlertEngine* alerts = options.alerts;
  obs::FlightRecorder* flight = options.flight;
  const int alert_row = decode_row + 1;
  if (recorder != nullptr && alerts != nullptr) {
    recorder->SetThreadName(0, alert_row, "slo alerts");
  }
  if (flight != nullptr) {
    flight->Append(0.0, "note",
                   "sim begin: " + std::to_string(trace.arrivals.size()) +
                       " requests");
  }

  // --- Simulation state. ---
  std::vector<Request> requests(trace.arrivals.size());
  for (size_t i = 0; i < trace.arrivals.size(); ++i) {
    requests[i].arrival = trace.arrivals[i];
  }
  std::vector<double> server_busy_until(static_cast<size_t>(num_servers),
                                        0.0);
  std::vector<double> server_busy_time(static_cast<size_t>(num_servers),
                                       0.0);
  std::deque<int> decode_waiting;
  struct ActiveSeq {
    int id = 0;
    int tokens = 0;
  };
  std::vector<ActiveSeq> decode_active;
  double decode_busy_time = 0.0;
  bool step_scheduled = false;

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
      events;
  for (size_t i = 0; i < trace.arrivals.size(); ++i) {
    events.push(Event{trace.arrivals[i], 0, static_cast<int>(i)});
  }

  int64_t completed = 0;
  double now = 0.0;

  // In-flight batches keyed by stage; completion events pop the
  // oldest batch of their stage (FIFO per server).
  struct InFlight {
    size_t stage = 0;
    std::vector<int> members;
  };
  std::vector<InFlight> in_flight;

  // Feeds every closed fine window to the flight recorder and the
  // alert engine; alert transitions become trace instants and flight
  // records. (No digest fold here: the sim result has no digest.)
  auto drain_telemetry_windows = [&]() {
    for (const obs::WindowSummary& window : series->DrainClosed()) {
      const double end = window.start + window.span;
      if (flight != nullptr && (window.offered > 0 || window.completed > 0)) {
        flight->Append(end, "window",
                       "offered=" + std::to_string(window.offered) +
                           " completed=" + std::to_string(window.completed),
                       window.attainment);
      }
      if (alerts == nullptr) {
        continue;
      }
      for (const obs::AlertTransition& transition :
           alerts->Observe(window)) {
        const std::string& rule_name =
            alerts->options()
                .rules[static_cast<size_t>(transition.rule)]
                .name;
        if (flight != nullptr) {
          flight->Append(transition.time, "alert",
                         rule_name +
                             (transition.firing ? " firing" : " clear"),
                         transition.short_burn);
        }
        if (recorder != nullptr) {
          obs::TraceEvent& instant = recorder->AddInstant(
              "alert:" + rule_name +
                  (transition.firing ? ":firing" : ":clear"),
              "alert", 0, alert_row, transition.time);
          instant.args.emplace_back("short_burn", transition.short_burn);
          instant.args.emplace_back("long_burn", transition.long_burn);
        }
      }
    }
  };
  // Closes windows the virtual clock has passed; called once per
  // popped event so alert evaluation lags arrivals by at most one
  // event, never by wall time.
  auto advance_telemetry = [&]() {
    if (series == nullptr) {
      return;
    }
    series->AdvanceTo(now);
    drain_telemetry_windows();
  };

  // Queue-depth observations feed both the windowed rollup and (while
  // tracing) a Chrome counter track per stage, so viewers graph depth
  // next to the spans.
  auto record_queue_depth = [&](size_t s) {
    const auto depth = static_cast<int64_t>(stages[s].queue.size());
    if (series != nullptr) {
      series->RecordQueueDepth(now, static_cast<int>(s), depth);
    }
    if (recorder != nullptr) {
      recorder->AddCounter(
          std::string("queue-depth: ") + core::StageName(stages[s].type) +
              " s" + std::to_string(s),
          "telemetry", 0, static_cast<int>(s), now,
          static_cast<double>(depth));
    }
  };

  auto start_batches = [&](bool force) {
    for (size_t s = 0; s < stages.size(); ++s) {
      SimStage& stage = stages[s];
      const auto server = static_cast<size_t>(stage.server);
      // A server may start several queued stages back to back only
      // when it frees up, so loop while it can start.
      while (!stage.queue.empty() && server_busy_until[server] <= now) {
        const bool full =
            static_cast<int64_t>(stage.queue.size()) >= stage.batch;
        // Tolerant comparison: a flush event fires at exactly
        // oldest + timeout, and (oldest + timeout) - oldest can round
        // below timeout in floating point.
        const bool timed_out =
            now >= stage.oldest_enqueue + options.batch_timeout - 1e-9;
        if (!full && !force && !timed_out) {
          break;
        }
        const auto take = static_cast<size_t>(std::min<int64_t>(
            stage.batch, static_cast<int64_t>(stage.queue.size())));
        InFlight batch;
        batch.stage = s;
        batch.members.assign(stage.queue.begin(),
                             stage.queue.begin() + static_cast<long>(take));
        stage.queue.erase(stage.queue.begin(),
                          stage.queue.begin() + static_cast<long>(take));
        stage.oldest_enqueue = now;
        server_busy_until[server] = now + stage.interval;
        server_busy_time[server] += stage.interval;
        if (series != nullptr) {
          // Occupancy attributed to the window containing the batch
          // start (windowed utilization is a rollup, not a partition).
          series->RecordBusy(now, static_cast<int>(s), stage.interval);
        }
        if (recorder != nullptr) {
          obs::TraceEvent& span = recorder->AddComplete(
              std::string(core::StageName(stage.type)) + " x" +
                  std::to_string(take),
              "stage", 0, stage.server, now, stage.interval);
          span.args.emplace_back("batch", static_cast<double>(take));
          span.args.emplace_back("latency", stage.latency);
          for (size_t i = 0; i < take; ++i) {
            const int id = batch.members[i];
            const double enqueued = stage.enqueue_times[i];
            recorder->AddComplete(
                std::string("queue:") + core::StageName(stage.type),
                "queue", 1, id, enqueued, now - enqueued, id);
            recorder->AddComplete(
                std::string("exec:") + core::StageName(stage.type),
                "stage", 1, id, now, stage.latency, id);
          }
          stage.enqueue_times.erase(
              stage.enqueue_times.begin(),
              stage.enqueue_times.begin() + static_cast<long>(take));
        }
        in_flight.push_back(std::move(batch));
        events.push(Event{now + stage.latency, 1, static_cast<int>(s)});
        record_queue_depth(s);
      }
      if (!stage.queue.empty() && server_busy_until[server] <= now) {
        // Re-check at the flush deadline.
        events.push(
            Event{stage.oldest_enqueue + options.batch_timeout, 2,
                  static_cast<int>(s)});
      }
    }
  };

  auto enqueue = [&](size_t s, int request) {
    SimStage& stage = stages[s];
    if (stage.queue.empty()) {
      stage.oldest_enqueue = now;
      events.push(Event{now + options.batch_timeout, 2,
                        static_cast<int>(s)});
    }
    stage.queue.push_back(request);
    if (recorder != nullptr) {
      stage.enqueue_times.push_back(now);
    }
    record_queue_depth(s);
  };

  auto admit_decode = [&]() {
    while (static_cast<int64_t>(decode_active.size()) <
               schedule.decode_batch &&
           !decode_waiting.empty()) {
      const int id = decode_waiting.front();
      decode_waiting.pop_front();
      requests[static_cast<size_t>(id)].decode_start = now;
      decode_active.push_back(ActiveSeq{id, 0});
    }
    if (!decode_active.empty() && !step_scheduled) {
      events.push(Event{now + step_latency, 3, 0});
      step_scheduled = true;
      decode_busy_time += step_latency;
    }
  };

  auto decode_step = [&]() {
    step_scheduled = false;
    if (recorder != nullptr) {
      // The step that just finished occupied [now - step, now].
      obs::TraceEvent& span = recorder->AddComplete(
          "decode-step", "stage", 0, decode_row, now - step_latency,
          step_latency);
      span.args.emplace_back("active",
                             static_cast<double>(decode_active.size()));
    }
    std::vector<ActiveSeq> still;
    still.reserve(decode_active.size());
    for (ActiveSeq& seq : decode_active) {
      if (++seq.tokens >= decode_tokens) {
        Request& request = requests[static_cast<size_t>(seq.id)];
        request.completion = now;
        ++completed;
        const double tpot =
            (request.completion - request.decode_start) / decode_tokens;
        // <= 0 disables a bound; the sim does not attribute
        // per-request queue wait, so the windowed queue-wait
        // histogram stays empty here (the runtime fills it).
        const bool within_slo =
            (options.slo_ttft_seconds <= 0 ||
             request.ttft <= options.slo_ttft_seconds) &&
            (options.slo_tpot_seconds <= 0 ||
             tpot <= options.slo_tpot_seconds);
        if (series != nullptr) {
          series->RecordCompletion(now, request.ttft, tpot, 0.0,
                                   within_slo);
        }
        if (recorder != nullptr) {
          recorder->AddComplete("decode", "stage", 1, seq.id,
                                request.decode_start,
                                now - request.decode_start, seq.id);
          recorder->AddComplete("request", "request", 1, seq.id,
                                request.arrival, now - request.arrival,
                                seq.id);
          // Terminal: seal for sampling, scored by end-to-end latency.
          recorder->FinalizeRequest(seq.id, now - request.arrival,
                                    !within_slo);
        }
      } else {
        still.push_back(seq);
      }
    }
    decode_active = std::move(still);
    admit_decode();
  };

  // On any exception below (including RAGO_CHECK invariant failures)
  // dump the flight recorder before unwinding, so the last moments of
  // the run survive the crash.
  struct FlightAbortGuard {
    obs::FlightRecorder* flight;
    const std::string* path;
    const double* now;
    ~FlightAbortGuard() {
      if (flight != nullptr && std::uncaught_exceptions() > 0) {
        flight->Append(*now, "exception", "sim aborted by exception");
        if (!path->empty()) {
          flight->DumpToFile(*path);
        }
      }
    }
  } flight_abort_guard{flight, &options.flight_dump_path, &now};

  while (!events.empty()) {
    const Event event = events.top();
    events.pop();
    now = std::max(now, event.time);
    advance_telemetry();

    switch (event.kind) {
      case 0: {  // Arrival.
        if (series != nullptr) {
          series->RecordOffered(now, /*admitted=*/true);
        }
        if (recorder != nullptr) {
          recorder->SetThreadName(1, event.a,
                                  "req " + std::to_string(event.a));
          recorder->AddInstant("arrival", "admission", 1, event.a, now,
                               event.a);
        }
        enqueue(0, event.a);
        break;
      }
      case 1: {  // Server done: complete the oldest batch of stage a.
        const auto s = static_cast<size_t>(event.a);
        for (size_t b = 0; b < in_flight.size(); ++b) {
          if (in_flight[b].stage != s) {
            continue;
          }
          for (int id : in_flight[b].members) {
            if (s + 1 < stages.size()) {
              enqueue(s + 1, id);
            } else {
              // Prefix complete: first token emitted.
              requests[static_cast<size_t>(id)].ttft =
                  now - requests[static_cast<size_t>(id)].arrival;
              decode_waiting.push_back(id);
              if (recorder != nullptr) {
                recorder->AddInstant("first-token", "stage", 1, id, now,
                                     id);
              }
            }
          }
          in_flight.erase(in_flight.begin() + static_cast<long>(b));
          break;
        }
        admit_decode();
        break;
      }
      case 2: {  // Flush deadline.
        break;     // start_batches below handles it.
      }
      case 3: {  // Decode step.
        decode_step();
        break;
      }
      default:
        RAGO_CHECK(false, "unknown event kind");
    }
    start_batches(/*force=*/false);
  }

  // Drain any remainder (partial batches below timeout at the end).
  while (completed < static_cast<int64_t>(requests.size())) {
    start_batches(/*force=*/true);
    if (events.empty()) {
      break;
    }
    const Event event = events.top();
    events.pop();
    now = std::max(now, event.time);
    advance_telemetry();
    if (event.kind == 1) {
      const auto s = static_cast<size_t>(event.a);
      for (size_t b = 0; b < in_flight.size(); ++b) {
        if (in_flight[b].stage != s) {
          continue;
        }
        for (int id : in_flight[b].members) {
          if (s + 1 < stages.size()) {
            enqueue(s + 1, id);
          } else {
            requests[static_cast<size_t>(id)].ttft =
                now - requests[static_cast<size_t>(id)].arrival;
            decode_waiting.push_back(id);
            if (recorder != nullptr) {
              recorder->AddInstant("first-token", "stage", 1, id, now,
                                   id);
            }
          }
        }
        in_flight.erase(in_flight.begin() + static_cast<long>(b));
        break;
      }
      admit_decode();
    } else if (event.kind == 3) {
      decode_step();
    }
  }

  RAGO_CHECK(completed == static_cast<int64_t>(requests.size()),
             "serving simulation failed to drain all requests");

  // --- Seal the observation layer at virtual end-of-run. ---
  if (series != nullptr) {
    series->Finish(now);
    drain_telemetry_windows();
  }
  if (recorder != nullptr) {
    recorder->FlushTailKeep();
  }
  if (flight != nullptr) {
    flight->Append(now, "note",
                   "sim end: completed=" + std::to_string(completed),
                   static_cast<double>(completed));
    if (!options.flight_dump_path.empty()) {
      flight->DumpToFile(options.flight_dump_path);
    }
  }

  // --- Aggregate. ---
  ServingSimResult result;
  result.completed = completed;
  result.makespan = now;
  result.throughput = completed / std::max(now, 1e-12);
  Histogram ttft_hist;
  Histogram tpot_hist;
  for (const Request& request : requests) {
    RAGO_CHECK(request.ttft >= 0 && request.completion >= 0,
               "request did not finish");
    ttft_hist.Add(request.ttft);
    tpot_hist.Add((request.completion - request.decode_start) /
                  decode_tokens);
  }
  result.avg_ttft = ttft_hist.Mean();
  result.p50_ttft = ttft_hist.Percentile(0.50);
  result.p95_ttft = ttft_hist.Percentile(0.95);
  result.p99_ttft = ttft_hist.Percentile(0.99);
  result.avg_tpot = tpot_hist.Mean();
  result.p50_tpot = tpot_hist.Percentile(0.50);
  result.p95_tpot = tpot_hist.Percentile(0.95);
  result.p99_tpot = tpot_hist.Percentile(0.99);
  result.group_utilization.resize(static_cast<size_t>(schedule.NumGroups()));
  for (int g = 0; g < schedule.NumGroups(); ++g) {
    result.group_utilization[static_cast<size_t>(g)] =
        server_busy_time[static_cast<size_t>(g)] / now;
  }
  result.retrieval_utilization =
      server_busy_time[static_cast<size_t>(retrieval_server)] / now;
  result.decode_utilization = decode_busy_time / now;
  return result;
}

}  // namespace rago::sim
