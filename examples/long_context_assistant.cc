/**
 * @file long_context_assistant.cc
 * Scenario: a document assistant where users upload book-length texts
 * (100K-10M tokens) and ask questions (paper Case II / NotebookLM-like
 * use). The uploaded text is chunk-encoded into a per-request vector
 * database and searched with brute-force kNN; the generative prompt
 * stays short. Shows the encoder becoming the bottleneck and what the
 * optimized schedule does about it.
 */
#include <cstdio>

#include "core/pipeline_model.h"
#include "core/schema.h"
#include "hardware/cluster.h"
#include "rago/optimizer.h"

int main() {
  using namespace rago;

  const ClusterConfig cluster = LargeCluster();  // 32 servers, 128 XPUs.

  for (int64_t context : {100'000LL, 1'000'000LL, 10'000'000LL}) {
    const core::RAGSchema schema = core::MakeLongContextSchema(70, context);
    const core::PipelineModel model(schema, cluster);

    std::printf("uploaded context: %lldK tokens -> %lld database vectors\n",
                static_cast<long long>(context / 1000),
                static_cast<long long>(schema.retrieval.num_db_vectors));
    for (const core::StageShare& share : model.TimeBreakdown()) {
      std::printf("  %-10s %5.1f%% of pipeline resource-time\n",
                  core::StageName(share.stage), 100 * share.fraction);
    }

    const opt::OptimizerResult result = opt::Optimizer(model).Search();
    const opt::ScheduledPoint& best = result.MaxQpsPerChip();
    std::printf("  optimized: %.2f QPS/Chip; encoder gets %d of %d "
                "allocated XPUs\n\n",
                best.perf.qps_per_chip, best.schedule.group_chips[0],
                best.schedule.AllocatedXpus());
  }

  std::printf("lesson (paper 5.2): a 120M encoder outweighs a 70B LLM\n"
              "once it must chew through megatokens per request - cache\n"
              "embeddings when documents are reused.\n");
  return 0;
}
