/**
 * @file shard_search_demo.cc
 * Scenario: the sharded retrieval service end to end. Partitions a
 * synthetic corpus across logical servers, fans a query batch out on a
 * thread pool, merges per-shard top-k into globally exact results
 * (verified against the single-index oracle), prints per-shard timing
 * instrumentation, calibrates a measured-cost RetrievalModel from the
 * run, and shows the capacity guard rejecting an under-provisioned
 * shard count for the paper-scale database.
 */
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "common/units.h"
#include "hardware/cpu_server.h"
#include "retrieval/ann/dataset.h"
#include "retrieval/ann/flat_index.h"
#include "retrieval/perf/scann_model.h"
#include "retrieval/serving/calibration.h"
#include "retrieval/serving/sharded_index.h"

int main() {
  using namespace rago;
  using namespace rago::serving;

  const size_t n = 20'000;
  const size_t dim = 32;
  Rng rng(404);
  const ann::Matrix data = ann::GenClustered(n, dim, 32, 0.3f, rng);
  const ann::Matrix queries = ann::GenQueriesNear(data, 16, 0.1f, rng);

  // Single-index oracle for the exactness check.
  const ann::FlatIndex single(data.Clone(), ann::Metric::kL2);
  const auto truth = single.SearchBatch(queries, 10);

  std::printf("sharded scatter-gather search: %zu vectors, %zu dims, "
              "%zu queries, top-10\n\n", n, dim, queries.rows());

  ThreadPool pool(4);
  for (PartitionerKind kind :
       {PartitionerKind::kRoundRobin, PartitionerKind::kHash,
        PartitionerKind::kKMeansBalanced}) {
    ShardedIndexOptions options;
    options.num_shards = 4;
    options.partitioner = kind;
    options.backend = ShardBackend::kFlat;
    const ShardedIndex sharded(data.Clone(), options);

    ShardSearchStats stats;
    const auto results = sharded.SearchBatch(queries, 10, &pool, &stats);

    // Merged results must be bit-identical to the single index.
    bool exact = results.size() == truth.size();
    for (size_t q = 0; q < results.size(); ++q) {
      exact = exact && results[q].size() == truth[q].size();
      for (size_t i = 0; i < results[q].size(); ++i) {
        exact = exact && results[q][i].id == truth[q][i].id &&
                results[q][i].dist == truth[q][i].dist;
      }
    }

    TextTable table(std::string("partitioner: ") + PartitionerName(kind) +
                    (exact ? "  [exact match vs single index]"
                           : "  [MISMATCH]"));
    table.SetHeader({"shard", "rows", "scan MB", "wall ms"});
    for (size_t s = 0; s < stats.shards.size(); ++s) {
      table.AddRow({std::to_string(s),
                    std::to_string(stats.shards[s].rows),
                    TextTable::Num(stats.shards[s].scan_bytes / kMiB, 4),
                    TextTable::Num(stats.shards[s].wall_seconds * 1e3, 4)});
    }
    table.AddRow({"merge", "-", "-",
                  TextTable::Num(stats.merge_seconds * 1e3, 4)});
    table.Print();
    std::printf("\n");
  }

  // Calibrate a measured-cost retrieval model from a real scan.
  {
    ShardedIndexOptions options;
    options.num_shards = 4;
    options.partitioner = PartitionerKind::kKMeansBalanced;
    const ShardedIndex sharded(data.Clone(), options);
    const retrieval::MeasuredRetrievalModel measured =
        CalibrateRetrievalModel(sharded, queries, 10, DefaultCpuServer(),
                                &pool);
    std::printf("calibrated measured-cost model (4 shards):\n");
    std::printf("  bytes/query/shard  %.3e\n",
                measured.profile().bytes_per_query_per_server);
    std::printf("  scan rate/core     %.3e B/s\n",
                measured.profile().scan_bytes_per_core);
    std::printf("  merge overhead     %.3e s/query\n",
                measured.profile().merge_seconds_per_query);
    std::printf("  Search(batch=16)   latency %.3e s, %.0f queries/s\n\n",
                measured.Search(16).latency, measured.Search(16).throughput);
  }

  // Capacity guard: the paper-scale database cannot live on 4 hosts.
  {
    retrieval::DatabaseSpec paper_db;  // 64B vectors, 96 B PQ codes.
    const int required = retrieval::ScannModel::MinServersForCapacity(
        paper_db, DefaultCpuServer());
    std::printf("capacity guard: paper database needs %d servers "
                "(%.2f TiB / %.0f GiB DRAM)\n", required,
                paper_db.QuantizedBytes() / kTiB,
                DefaultCpuServer().dram_bytes / kGiB);
    ShardedIndexOptions options;
    options.num_shards = 4;
    options.modeled_db = paper_db;
    try {
      const ShardedIndex sharded(data.Clone(), options);
      std::printf("ERROR: under-provisioned build unexpectedly passed\n");
      return 1;
    } catch (const ConfigError& error) {
      std::printf("4 shards rejected as expected:\n  %s\n", error.what());
    }
  }

  std::printf("\nlesson: scatter-gather over per-shard top-k heaps is "
              "exact for any\npartitioner, and its measured per-shard "
              "timings price the same bytes\nthe analytical ScannModel "
              "charges.\n");
  return 0;
}
