/**
 * @file vector_search_demo.cc
 * Scenario: the retrieval substrate by itself. Builds the functional
 * ANN indexes (flat, IVF, IVF-PQ, ScaNN-style tree) over a synthetic
 * corpus and walks the recall-vs-scanned-bytes trade-off that the
 * paper's P_scan knob controls (Fig. 7b), then prices the same
 * trade-off at 64B-vector scale with the analytical ScaNN model.
 */
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "hardware/cpu_server.h"
#include "retrieval/ann/dataset.h"
#include "retrieval/ann/flat_index.h"
#include "retrieval/ann/ivfpq_index.h"
#include "retrieval/ann/recall.h"
#include "retrieval/ann/scann_tree.h"
#include "retrieval/perf/scann_model.h"

int main() {
  using namespace rago;

  // Synthetic clustered corpus: 20K vectors of 64 dims.
  Rng rng(2024);
  ann::Matrix data = ann::GenClustered(20'000, 64, 64, 0.3f, rng);
  const ann::Matrix queries = ann::GenQueriesNear(data, 32, 0.1f, rng);

  // Ground truth from the exact index.
  ann::Matrix copy(data.rows(), data.dim());
  for (size_t i = 0; i < data.rows(); ++i) {
    copy.CopyRowFrom(data, i, i);
  }
  const ann::FlatIndex flat(std::move(copy), ann::Metric::kL2);
  std::vector<std::vector<ann::Neighbor>> truth;
  for (size_t q = 0; q < queries.rows(); ++q) {
    truth.push_back(flat.Search(queries.Row(q), 10));
  }

  // IVF-PQ: the paper's workhorse algorithm (IVF lists of PQ codes).
  {
    ann::IvfPqOptions options;
    options.nlist = 128;
    options.pq_subspaces = 8;
    ann::Matrix ivf_data(data.rows(), data.dim());
    for (size_t i = 0; i < data.rows(); ++i) {
      ivf_data.CopyRowFrom(data, i, i);
    }
    const ann::IvfPqIndex index(std::move(ivf_data), options, rng);
    std::printf("IVF-PQ (nlist=128, 8-byte codes):\n");
    std::printf("  %-8s %-14s %s\n", "nprobe", "scanned bytes", "recall@10");
    for (int nprobe : {1, 4, 16, 64, 128}) {
      std::vector<std::vector<ann::Neighbor>> results;
      for (size_t q = 0; q < queries.rows(); ++q) {
        results.push_back(index.Search(queries.Row(q), 10, nprobe, 100));
      }
      std::printf("  %-8d %-14.0f %.3f\n", nprobe,
                  index.ExpectedScannedBytes(nprobe),
                  ann::MeanRecallAtK(results, truth, 10));
    }
  }

  // ScaNN-style tree, as used for the hyperscale database.
  {
    ann::ScannTreeOptions options;
    options.levels = 2;
    options.fanout = 16;
    options.pq_subspaces = 8;
    const ann::ScannTree tree(std::move(data), options, rng);
    std::printf("\nScaNN-style tree (%zu leaves):\n", tree.NumLeaves());
    std::printf("  %-8s %-14s %s\n", "beam", "leaf bytes", "recall@10");
    for (int beam : {1, 2, 8, 32, 128}) {
      std::vector<std::vector<ann::Neighbor>> results;
      for (size_t q = 0; q < queries.rows(); ++q) {
        results.push_back(tree.Search(queries.Row(q), 10, beam, 100));
      }
      std::printf("  %-8d %-14.0f %.3f\n", beam,
                  tree.ExpectedLeafBytesScanned(beam),
                  ann::MeanRecallAtK(results, truth, 10));
    }
  }

  // The same trade-off at production scale, priced analytically.
  std::printf("\nhyperscale pricing (64B vectors, 16 EPYC servers):\n");
  std::printf("  %-10s %-16s %-14s %s\n", "P_scan", "bytes/query",
              "latency b=1", "max QPS");
  for (double scan : {0.0001, 0.001, 0.01}) {
    retrieval::DatabaseSpec spec;
    spec.scan_fraction = scan;
    const retrieval::ScannModel model(spec, DefaultCpuServer(), 16);
    std::printf("  %-10.4f %-16.3e %-11.1f ms %.0f\n", scan,
                model.BytesScannedPerQuery(),
                ToMillis(model.Search(1).latency),
                model.Search(4096).throughput);
  }
  std::printf("\nlesson: P_scan buys recall linearly in scanned bytes - "
              "the\nsame bytes the serving cost model charges for.\n");
  return 0;
}
