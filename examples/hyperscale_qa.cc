/**
 * @file hyperscale_qa.cc
 * Scenario: a question-answering service backed by a 64-billion-vector
 * knowledge corpus (paper Case I / the RETRO setting). Compares RAG
 * with a small LLM against an LLM-only deployment of a 10x larger
 * model, then shows how multi-query retrieval shifts the bottleneck.
 */
#include <cstdio>

#include "core/pipeline_model.h"
#include "core/schema.h"
#include "hardware/cluster.h"
#include "rago/optimizer.h"

int main() {
  using namespace rago;

  const ClusterConfig cluster = DefaultCluster();

  std::printf("QA service on a 64B-vector corpus, 16 servers / 64 XPUs\n\n");

  // RAG with an 8B model vs LLM-only with 70B: the quality-equivalent
  // pairing from the RETRO line of work.
  auto best_qpc = [&](const core::RAGSchema& schema) {
    const core::PipelineModel model(schema, cluster);
    return opt::Optimizer(model).Search().MaxQpsPerChip().perf;
  };
  const core::EndToEndPerf rag = best_qpc(core::MakeHyperscaleSchema(8, 1));
  const core::EndToEndPerf llm = best_qpc(core::MakeLlmOnlySchema(70));
  std::printf("RAG 8B:       %5.2f QPS/Chip (TTFT %6.1f ms)\n",
              rag.qps_per_chip, ToMillis(rag.ttft));
  std::printf("LLM-only 70B: %5.2f QPS/Chip (TTFT %6.1f ms)\n",
              llm.qps_per_chip, ToMillis(llm.ttft));
  std::printf("-> serving cost advantage of RAG: %.2fx\n\n",
              rag.qps_per_chip / llm.qps_per_chip);

  // Multi-query retrieval (query decomposition) raises retrieval load.
  std::printf("retrieval share of pipeline resource-time (8B LLM):\n");
  for (int queries : {1, 2, 4, 8}) {
    const core::PipelineModel model(core::MakeHyperscaleSchema(8, queries),
                                    cluster);
    for (const core::StageShare& share : model.TimeBreakdown()) {
      if (share.stage == core::StageType::kRetrieval) {
        std::printf("  %d quer%s per retrieval: %4.1f%%\n", queries,
                    queries == 1 ? "y " : "ies", 100 * share.fraction);
      }
    }
  }
  std::printf("\nlesson (paper 5.1): at hyperscale, retrieval - not the "
              "LLM -\nis what you provision for once models drop below "
              "~70B.\n");
  return 0;
}
