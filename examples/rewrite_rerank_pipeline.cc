/**
 * @file rewrite_rerank_pipeline.cc
 * Scenario: a production search assistant with a query rewriter in
 * front of retrieval and a reranker behind it (paper Case IV).
 * Compares placement policies and prints the schedule RAGO picks.
 */
#include <cstdio>

#include "core/pipeline_model.h"
#include "core/schema.h"
#include "hardware/cluster.h"
#include "rago/optimizer.h"

int main() {
  using namespace rago;

  const core::PipelineModel model(core::MakeRewriterRerankerSchema(70),
                                  LargeCluster());
  opt::SearchOptions options;
  options.batch_sizes = {1, 4, 16, 64, 256};
  options.decode_batch_sizes = {16, 64, 256, 1024};
  const opt::Optimizer optimizer(model, options);

  std::printf("pipeline: rewrite(prefix+decode) -> retrieval -> rerank "
              "-> prefix -> decode\n\n");

  // Compare the two placement extremes against the full search.
  auto run_placement = [&](int filter, const char* name) {
    opt::SearchOptions filtered = options;
    filtered.placement_filter = filter;
    const opt::OptimizerResult result =
        opt::Optimizer(model, filtered).Search();
    if (result.pareto.empty()) {
      std::printf("%-24s infeasible\n", name);
      return;
    }
    std::printf("%-24s max %5.3f QPS/Chip, min TTFT %6.1f ms\n", name,
                result.MaxQpsPerChip().perf.qps_per_chip,
                ToMillis(result.MinTtft().perf.ttft));
  };
  run_placement(0, "fully collocated:");
  const int placements =
      static_cast<int>(optimizer.PlacementOptions().size());
  run_placement(placements - 1, "fully disaggregated:");

  const opt::OptimizerResult full = optimizer.Search();
  const opt::ScheduledPoint& best = full.MaxQpsPerChip();
  std::printf("%-24s max %5.3f QPS/Chip, min TTFT %6.1f ms\n\n",
              "RAGO (all placements):", best.perf.qps_per_chip,
              ToMillis(full.MinTtft().perf.ttft));

  std::printf("winning placement: %s\n",
              optimizer.PlacementLabel(best.schedule.chain_group).c_str());
  for (size_t i = 0; i < model.chain().size(); ++i) {
    const int g = best.schedule.chain_group[i];
    std::printf("  %-14s group %d, %2d XPUs, batch %lld\n",
                core::StageName(model.chain()[i]), g,
                best.schedule.group_chips[static_cast<size_t>(g)],
                static_cast<long long>(best.schedule.chain_batch[i]));
  }
  std::printf("  %-14s          %2d XPUs, batch %lld\n", "decode",
              best.schedule.decode_chips,
              static_cast<long long>(best.schedule.decode_batch));
  std::printf("\nlesson (paper 5.4/7): keep the tiny rewriter off the "
              "prefix\nchips and never let a collocated group idle "
              "through retrieval.\n");
  return 0;
}
