/**
 * @file capacity_planner.cc
 * Scenario: a platform team must quote hardware for a new RAG product
 * with explicit SLOs. Uses the provisioner (the inverse of the RAGO
 * search) to find the fewest XPUs that meet TTFT/QPS targets, and the
 * trace-driven serving simulator to sanity-check the chosen schedule
 * under Poisson load before committing.
 */
#include <cstdio>

#include "core/pipeline_model.h"
#include "core/schema.h"
#include "hardware/cluster.h"
#include "rago/provisioner.h"
#include "sim/serving_sim.h"

int main() {
  using namespace rago;

  const core::PipelineModel model(core::MakeHyperscaleSchema(8, 1),
                                  DefaultCluster());

  opt::SloSpec slo;
  slo.min_qps = 50.0;
  slo.max_ttft = 0.200;

  std::printf("SLOs: >= %.0f QPS sustained, TTFT <= %.0f ms\n\n",
              slo.min_qps, ToMillis(slo.max_ttft));

  const opt::ProvisionResult plan = opt::Provision(model, slo);
  if (!plan.satisfiable) {
    std::printf("not satisfiable within the cluster\n");
    return 1;
  }
  std::printf("cheapest plan: %d XPUs allocated (budget probe stopped at "
              "%d)\n",
              plan.chosen.schedule.AllocatedXpus(), plan.xpu_budget);
  std::printf("  prefix: %d XPUs (batch %lld), decode: %d XPUs (batch "
              "%lld)\n",
              plan.chosen.schedule.group_chips[0],
              static_cast<long long>(plan.chosen.schedule.chain_batch[0]),
              plan.chosen.schedule.decode_chips,
              static_cast<long long>(plan.chosen.schedule.decode_batch));
  std::printf("  predicted: %.1f QPS, TTFT %.1f ms, TPOT %.2f ms\n\n",
              plan.chosen.perf.qps, ToMillis(plan.chosen.perf.ttft),
              ToMillis(plan.chosen.perf.tpot));

  // Validate under a Poisson arrival trace at 90% of the SLO load.
  const sim::ArrivalTrace trace =
      sim::PoissonTrace(2000, slo.min_qps * 0.9, /*seed=*/2026);
  const sim::ServingSimResult observed =
      sim::SimulateServing(model, plan.chosen.schedule, trace);
  std::printf("simulated at %.0f QPS offered: throughput %.1f QPS, avg "
              "TTFT %.1f ms, p99 TTFT %.1f ms\n",
              slo.min_qps * 0.9, observed.throughput,
              ToMillis(observed.avg_ttft), ToMillis(observed.p99_ttft));
  std::printf("prefix-group utilization %.0f%%, retrieval %.0f%%, decode "
              "%.0f%%\n",
              100 * observed.group_utilization[0],
              100 * observed.retrieval_utilization,
              100 * observed.decode_utilization);
  std::printf("\nlesson: the frontier answers \"how good can it be\"; the\n"
              "provisioner + simulator answer \"what do we buy and will "
              "it hold\".\n");
  return 0;
}
