/**
 * @file quickstart.cc
 * Quickstart: describe a RAG workload with RAGSchema, build the
 * pipeline performance model, run the RAGO optimizer, and inspect the
 * TTFT x QPS/Chip Pareto frontier and the winning schedules.
 *
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */
#include <cstdio>

#include "core/pipeline_model.h"
#include "core/schema.h"
#include "hardware/cluster.h"
#include "rago/optimizer.h"

int main() {
  using namespace rago;

  // 1. Describe the workload: a hyperscale-retrieval RAG pipeline
  //    (paper Case I) with an 8B generative LLM, one query vector per
  //    retrieval, and the paper's default sequence lengths.
  core::RAGSchema schema = core::MakeHyperscaleSchema(/*llm_billions=*/8,
                                                      /*queries_per_retrieval=*/1);

  // 2. Describe the hardware: 16 host servers, 4 XPU-C each, the
  //    quantized 64-billion-vector database sharded across the hosts.
  const ClusterConfig cluster = DefaultCluster();

  // 3. Build the performance model and run the optimizer.
  const core::PipelineModel model(schema, cluster);
  const opt::Optimizer optimizer(model);
  const opt::OptimizerResult result = optimizer.Search();

  std::printf("searched %lld schedules (%lld feasible)\n",
              static_cast<long long>(result.schedules_evaluated),
              static_cast<long long>(result.schedules_feasible));
  std::printf("Pareto frontier (%zu points):\n", result.pareto.size());
  for (const opt::ScheduledPoint& point : result.pareto) {
    std::printf("  TTFT %7.2f ms | QPS/Chip %6.2f | QPS %7.1f | "
                "prefix x%d chips, decode x%d chips\n",
                ToMillis(point.perf.ttft), point.perf.qps_per_chip,
                point.perf.qps, point.schedule.group_chips[0],
                point.schedule.decode_chips);
  }

  // 4. Inspect the two ends of the frontier.
  const opt::ScheduledPoint& throughput = result.MaxQpsPerChip();
  const opt::ScheduledPoint& latency = result.MinTtft();
  std::printf("\nthroughput-optimal: %.2f QPS/Chip at %.1f ms TTFT "
              "(batch %lld, retrieval batch %lld)\n",
              throughput.perf.qps_per_chip,
              ToMillis(throughput.perf.ttft),
              static_cast<long long>(throughput.schedule.chain_batch[0]),
              static_cast<long long>(throughput.schedule.retrieval_batch));
  std::printf("latency-optimal:    %.2f QPS/Chip at %.1f ms TTFT\n",
              latency.perf.qps_per_chip, ToMillis(latency.perf.ttft));
  return 0;
}
