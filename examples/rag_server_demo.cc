/**
 * @file rag_server_demo.cc
 * Scenario: the full RAGO closed loop, end to end on one machine.
 *
 *  1. Build a live sharded retrieval tier over a synthetic corpus.
 *  2. Calibrate a measured-cost retrieval model from a real scan.
 *  3. Run the Algorithm-1 optimizer and pick the throughput-optimal
 *     schedule off the Pareto frontier.
 *  4. Execute that schedule in the online serving runtime against a
 *     Poisson workload: real ShardedIndex scans answer every request
 *     while XPU stages advance on model-priced virtual time.
 *  5. Report SLO telemetry — TTFT/TPOT percentiles, queue waits,
 *     per-stage utilization, attainment — and stress the same
 *     deployment with a bursty MMPP scenario.
 */
#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "common/units.h"
#include "core/pipeline_model.h"
#include "core/schema.h"
#include "hardware/cluster.h"
#include "hardware/cpu_server.h"
#include "rago/optimizer.h"
#include "retrieval/ann/dataset.h"
#include "retrieval/serving/calibration.h"
#include "retrieval/serving/sharded_index.h"
#include "serving/runtime/runtime.h"
#include "serving/runtime/workload.h"

int main() {
  using namespace rago;
  using namespace rago::runtime;

  // --- 1. Live retrieval tier: 20K x 32-d corpus on 4 logical
  // servers, kmeans-balanced shards, IVF per shard. ---
  const size_t n = 20'000;
  const size_t dim = 32;
  Rng rng(404);
  ann::Matrix corpus = ann::GenClustered(n, dim, 32, 0.3f, rng);
  const ann::Matrix query_pool =
      ann::GenQueriesNear(corpus, 128, 0.1f, rng);

  serving::ShardedIndexOptions tier_options;
  tier_options.num_shards = 4;
  tier_options.partitioner = serving::PartitionerKind::kKMeansBalanced;
  tier_options.backend = serving::ShardBackend::kIvf;
  tier_options.ivf.nlist = 32;
  tier_options.nprobe = 8;
  tier_options.num_threads = 1;  // The runtime's pool parallelizes.
  const serving::ShardedIndex tier(std::move(corpus), tier_options);
  std::printf("retrieval tier: %zu vectors, %zu dims, %d shards (%s/%s)\n",
              tier.size(), tier.dim(), tier.num_shards(),
              serving::ShardBackendName(tier_options.backend),
              serving::PartitionerName(tier_options.partitioner));

  // --- 2. Calibrate measured scan costs from a real warm-up batch. ---
  const retrieval::MeasuredRetrievalModel measured =
      serving::CalibrateRetrievalModel(tier, query_pool, 10,
                                       DefaultCpuServer());
  std::printf("calibrated scan profile: %.2e bytes/query/shard, "
              "%.2e B/s/core\n\n",
              measured.profile().bytes_per_query_per_server,
              measured.profile().scan_bytes_per_core);

  // --- 3. Optimizer-chosen schedule (throughput-optimal point). ---
  const core::RAGSchema schema = core::MakeHyperscaleSchema(8, 1);
  const core::PipelineModel model(schema, DefaultCluster());
  opt::SearchOptions grid;
  grid.batch_sizes = {1, 4, 16, 64};
  grid.decode_batch_sizes = {16, 64, 256};
  const opt::OptimizerResult searched =
      opt::Optimizer(model, grid).Search();
  const opt::ScheduledPoint& chosen = searched.MaxQpsPerChip();
  std::printf("optimizer: %lld schedules -> frontier of %zu; serving "
              "the throughput-optimal point\n",
              static_cast<long long>(searched.schedules_evaluated),
              searched.pareto.size());
  std::printf("  schedule: prefix x%d chips batch %lld, decode x%d "
              "batch %lld, retrieval batch %lld (analytical %.1f QPS, "
              "TTFT %.1f ms)\n\n",
              chosen.schedule.group_chips[0],
              static_cast<long long>(chosen.schedule.chain_batch[0]),
              chosen.schedule.decode_chips,
              static_cast<long long>(chosen.schedule.decode_batch),
              static_cast<long long>(chosen.schedule.retrieval_batch),
              chosen.perf.qps, ToMillis(chosen.perf.ttft));

  // --- 4. Serve live traffic under that schedule, with the
  // retrieval stage priced by the calibrated measured-cost model (the
  // closed loop: real scans fed the calibration, and the optimizer's
  // schedule now executes against those measured costs). ---
  const retrieval::MeasuredRetrievalModel priced(
      measured.profile(), DefaultCpuServer(),
      chosen.schedule.retrieval_servers);
  RuntimeOptions options;
  options.top_k = 10;
  options.admission_queue_limit = 256;
  options.slo.ttft_seconds = chosen.perf.ttft * 3.0 + 0.1;
  options.slo.tpot_seconds = chosen.perf.tpot * 3.0;
  options.retrieval_model = &priced;
  const ServingRuntime server(model, chosen.schedule, tier, options);

  auto report = [&](const char* name, const RuntimeResult& result) {
    TextTable table(std::string("workload: ") + name);
    table.SetHeader({"metric", "value"});
    table.AddRow({"completed / submitted",
                  std::to_string(result.completed) + " / " +
                      std::to_string(result.submitted)});
    table.AddRow({"rejected", std::to_string(result.rejected)});
    table.AddRow({"throughput (QPS)",
                  TextTable::Num(result.throughput, 4)});
    table.AddRow({"TTFT p50/p95/p99 (ms)",
                  TextTable::Num(result.ttft.Percentile(0.5) * 1e3, 4) +
                      " / " +
                      TextTable::Num(result.ttft.Percentile(0.95) * 1e3,
                                     4) +
                      " / " +
                      TextTable::Num(result.ttft.Percentile(0.99) * 1e3,
                                     4)});
    table.AddRow({"TPOT p95 (ms)",
                  TextTable::Num(result.tpot.Percentile(0.95) * 1e3, 4)});
    table.AddRow({"queue wait p95 (ms)",
                  TextTable::Num(
                      result.queue_wait.Percentile(0.95) * 1e3, 4)});
    table.AddRow({"SLO attainment",
                  TextTable::Num(result.slo_attainment, 4)});
    for (const StageTelemetry& stage : result.stages) {
      table.AddRow({std::string(core::StageName(stage.type)) +
                        " utilization",
                    TextTable::Num(stage.utilization, 4)});
    }
    table.AddRow({"decode utilization",
                  TextTable::Num(result.decode_utilization, 4)});
    table.AddRow({"real scan MB",
                  TextTable::Num(result.real_scan_bytes / kMiB, 4)});
    table.Print();
    std::printf("\n");
  };

  const double offered = chosen.perf.qps * 0.7;
  const RuntimeResult poisson = server.Serve(
      PoissonTrace(600, offered, 7), query_pool);
  report("poisson @ 70% capacity", poisson);

  // --- 5. Same deployment under bursty traffic. ---
  MmppOptions bursty;
  bursty.quiet_qps = offered * 0.5;
  bursty.burst_qps = chosen.perf.qps * 4.0;
  bursty.mean_quiet_seconds = 1.0;
  bursty.mean_burst_seconds = 0.25;
  const RuntimeResult mmpp =
      server.Serve(MmppTrace(600, bursty, 7), query_pool);
  report("bursty MMPP (4x-capacity bursts)", mmpp);

  if (poisson.completed != 600 || poisson.rejected != 0) {
    std::printf("ERROR: poisson workload not fully served\n");
    return 1;
  }
  std::printf(
      "lesson: real scans calibrate the retrieval cost model, and the\n"
      "optimizer's chosen schedule then executes against those measured\n"
      "costs — real scans answering every request while the virtual\n"
      "clock prices the XPU stages — so schedule choices are validated\n"
      "against SLOs before any hardware is committed.\n");
  return 0;
}
