/**
 * @file iterative_agent.cc
 * Scenario: an agentic / multi-hop reasoning workload where the
 * decoder issues fresh retrievals mid-generation (paper Case III).
 * Uses the discrete-event simulator to pick an iterative retrieval
 * batch size that doesn't stall the continuous decode batch.
 */
#include <cstdio>

#include "core/pipeline_model.h"
#include "core/schema.h"
#include "hardware/cluster.h"
#include "sim/iterative_sim.h"

int main() {
  using namespace rago;

  const core::PipelineModel model(core::MakeIterativeSchema(70, 4),
                                  DefaultCluster());
  const int decode_chips = 16;
  const int decode_batch = 64;
  const double step = model.EvalDecode(decode_chips, decode_batch).latency;

  std::printf("70B agent, 4 retrievals/sequence, decode batch %d "
              "(step %.1f ms)\n\n",
              decode_batch, ToMillis(step));
  std::printf("%-16s %-12s %-14s %s\n", "iterative batch", "TPOT (ms)",
              "slowdown", "rounds flushed");

  double best_tpot = 1e30;
  int best_batch = 1;
  for (int iterative : {1, 2, 4, 8, 16, 32, 64}) {
    sim::IterativeSimConfig config;
    config.decode_batch = decode_batch;
    config.iterative_batch = iterative;
    config.decode_tokens = model.schema().workload.decode_tokens;
    config.retrievals_per_sequence = 4;
    config.step_latency = step;
    config.round_latency =
        model.EvalRetrieval(iterative, model.MinRetrievalServers()).latency +
        model.EvalIngestPrefix(decode_chips, iterative).latency;
    config.num_sequences = 256;
    const sim::IterativeSimResult result =
        sim::SimulateIterativeDecode(config);
    std::printf("%-16d %-12.2f %-14.2f %lld\n", iterative,
                ToMillis(result.avg_tpot), result.avg_tpot / step,
                static_cast<long long>(result.flushed_rounds));
    if (result.avg_tpot < best_tpot) {
      best_tpot = result.avg_tpot;
      best_batch = iterative;
    }
  }
  std::printf("\nchosen iterative batch: %d (TPOT %.2f ms)\n", best_batch,
              ToMillis(best_tpot));
  std::printf("lesson (paper 5.3): batch iterative retrievals enough to\n"
              "use the database efficiently, but never so much that the\n"
              "decoder waits for peers to trigger.\n");
  return 0;
}
