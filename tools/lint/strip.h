/**
 * @file strip.h
 * Internal token-classification helpers shared by the tokenizer
 * (strip.cc) and the rule checkers (lint.cc). The public entry point
 * for stripping is StripSource in lint.h; this header only exists so
 * the two translation units agree on what an identifier character is.
 */
#ifndef RAGO_TOOLS_LINT_STRIP_H
#define RAGO_TOOLS_LINT_STRIP_H

namespace rago {
namespace lint {

/// True for [A-Za-z0-9_] — the identifier alphabet used when deciding
/// token boundaries (and digit-separator vs char-literal quotes).
bool IsIdentChar(char c);

/// Locale-independent isspace over the source byte.
bool IsSpace(char c);

}  // namespace lint
}  // namespace rago

#endif  // RAGO_TOOLS_LINT_STRIP_H
