/**
 * @file strip.cc
 * The rago_lint tokenizer: comment and literal stripping with line
 * structure preserved, plus `rago-lint: allow(...)` suppression
 * harvesting. Kept in its own translation unit because it is the one
 * piece of the linter with real state-machine subtlety (raw strings,
 * digit separators, escaped quotes, next-line suppression semantics);
 * the rule checkers in lint.cc only ever see its output.
 */
#include <cctype>
#include <set>
#include <string>

#include "tools/lint/lint.h"
#include "tools/lint/strip.h"

namespace rago {
namespace lint {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsSpace(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }

namespace {

/// Extracts `rago-lint: allow(a,b)` rule lists from one comment body.
std::set<std::string> ParseAllowComment(const std::string& comment) {
  std::set<std::string> rules;
  const std::string marker = "rago-lint:";
  size_t pos = comment.find(marker);
  if (pos == std::string::npos) {
    return rules;
  }
  pos += marker.size();
  while (pos < comment.size() && IsSpace(comment[pos])) {
    ++pos;
  }
  const std::string verb = "allow(";
  if (comment.compare(pos, verb.size(), verb) != 0) {
    return rules;
  }
  pos += verb.size();
  const size_t close = comment.find(')', pos);
  if (close == std::string::npos) {
    return rules;
  }
  std::string name;
  for (size_t i = pos; i <= close; ++i) {
    const char c = comment[i];
    if (c == ',' || c == ')') {
      if (!name.empty()) {
        rules.insert(name);
      }
      name.clear();
    } else if (!IsSpace(c)) {
      name.push_back(c);
    }
  }
  return rules;
}

}  // namespace

StrippedSource StripSource(const std::string& content) {
  StrippedSource out;
  out.code.reserve(content.size());

  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  int line = 1;
  int comment_start_line = 1;
  bool comment_own_line = false;  // No code before the comment opener.
  bool line_has_code = false;
  std::string comment_text;
  std::string raw_delim;  // `)delim"` terminator for the raw string.
  char last_code_char = '\0';

  // A trailing comment suppresses on the line(s) it touches; a comment
  // that starts its own line also covers the next line (the
  // NOLINT/NOLINTNEXTLINE convention folded into one marker).
  auto attach_suppressions = [&](int from_line, int to_line) {
    const std::set<std::string> rules = ParseAllowComment(comment_text);
    if (!rules.empty()) {
      if (comment_own_line) {
        ++to_line;
      }
      for (int l = from_line; l <= to_line; ++l) {
        out.suppressions[l].insert(rules.begin(), rules.end());
      }
    }
    comment_text.clear();
  };

  size_t i = 0;
  const size_t n = content.size();
  while (i < n) {
    const char c = content[i];
    const char next = i + 1 < n ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode: {
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          comment_start_line = line;
          comment_own_line = !line_has_code;
          out.code += "  ";
          i += 2;
          continue;
        }
        if (c == '/' && next == '*') {
          state = State::kBlockComment;
          comment_start_line = line;
          comment_own_line = !line_has_code;
          out.code += "  ";
          i += 2;
          continue;
        }
        if (c == '"') {
          // Raw string: R"delim( ... )delim", with optional encoding
          // prefix (u8R, uR, UR, LR) already emitted as code.
          if (last_code_char == 'R') {
            size_t d = i + 1;
            std::string delim;
            while (d < n && content[d] != '(' && content[d] != '"' &&
                   !IsSpace(content[d]) && d - i - 1 <= 16) {
              delim.push_back(content[d]);
              ++d;
            }
            if (d < n && content[d] == '(') {
              state = State::kRawString;
              raw_delim = ")" + delim + "\"";
              out.code += '"';
              last_code_char = '"';
              line_has_code = true;
              i = d + 1;
              continue;
            }
          }
          state = State::kString;
          out.code += '"';
          last_code_char = '"';
          line_has_code = true;
          ++i;
          continue;
        }
        if (c == '\'' && !IsIdentChar(last_code_char)) {
          // Not a digit separator (1'000) — a real char literal.
          state = State::kChar;
          out.code += '\'';
          last_code_char = '\'';
          line_has_code = true;
          ++i;
          continue;
        }
        out.code += c;
        if (c == '\n') {
          ++line;
          line_has_code = false;
        } else if (!IsSpace(c)) {
          last_code_char = c;
          line_has_code = true;
        }
        ++i;
        continue;
      }
      case State::kLineComment: {
        if (c == '\n') {
          attach_suppressions(comment_start_line, line);
          state = State::kCode;
          out.code += '\n';
          ++line;
          line_has_code = false;
        } else {
          comment_text.push_back(c);
          out.code += ' ';
        }
        ++i;
        continue;
      }
      case State::kBlockComment: {
        if (c == '*' && next == '/') {
          attach_suppressions(comment_start_line, line);
          state = State::kCode;
          out.code += "  ";
          i += 2;
          continue;
        }
        comment_text.push_back(c);
        if (c == '\n') {
          ++line;
          line_has_code = false;
          out.code += '\n';
        } else {
          out.code += ' ';
        }
        ++i;
        continue;
      }
      case State::kString: {
        if (c == '\\' && i + 1 < n) {
          out.code += "  ";
          i += 2;
          continue;
        }
        if (c == '"') {
          state = State::kCode;
          out.code += '"';
          last_code_char = '"';
        } else if (c == '\n') {
          // Unterminated (malformed) — resync at the newline.
          state = State::kCode;
          out.code += '\n';
          ++line;
          line_has_code = false;
        } else {
          out.code += ' ';
        }
        ++i;
        continue;
      }
      case State::kChar: {
        if (c == '\\' && i + 1 < n) {
          out.code += "  ";
          i += 2;
          continue;
        }
        if (c == '\'') {
          state = State::kCode;
          out.code += '\'';
          last_code_char = '\'';
        } else if (c == '\n') {
          state = State::kCode;
          out.code += '\n';
          ++line;
          line_has_code = false;
        } else {
          out.code += ' ';
        }
        ++i;
        continue;
      }
      case State::kRawString: {
        if (c == ')' &&
            content.compare(i, raw_delim.size(), raw_delim) == 0) {
          state = State::kCode;
          out.code += '"';
          last_code_char = '"';
          i += raw_delim.size();
          continue;
        }
        if (c == '\n') {
          ++line;
          out.code += '\n';
        } else {
          out.code += ' ';
        }
        ++i;
        continue;
      }
    }
  }
  if (state == State::kLineComment || state == State::kBlockComment) {
    attach_suppressions(comment_start_line, line);
  }
  return out;
}

}  // namespace lint
}  // namespace rago
