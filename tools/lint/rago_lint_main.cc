/**
 * @file rago_lint_main.cc
 * CLI driver for the determinism/concurrency linter (see lint.h).
 *
 * Usage:
 *   rago_lint [--root DIR] [--config FILE] [--list-rules] [path...]
 *
 * Paths are directories or files relative to --root (default: the
 * current directory); with no paths, `src tests bench examples tools`
 * are scanned. Directories are walked recursively for .h/.cc files.
 * Prints one `file:line: [rule] message` per violation and exits
 * non-zero if any survive config allowlists and inline suppressions.
 * Registered in CTest as `lint_tree`, so tier-1 verify gates on it.
 */
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "tools/lint/lint.h"

namespace fs = std::filesystem;

namespace {

std::string ReadFile(const fs::path& path) {
  std::ifstream stream(path, std::ios::binary);
  RAGO_REQUIRE(stream.good(), "cannot open " + path.string());
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  return buffer.str();
}

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".hpp" || ext == ".cpp";
}

/// `path` relative to `root`, '/'-separated, for config matching.
std::string RelPath(const fs::path& root, const fs::path& path) {
  const std::string rel = fs::relative(path, root).generic_string();
  return rel;
}

int Run(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string config_path;
  std::vector<std::string> targets;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--config" && i + 1 < argc) {
      config_path = argv[++i];
    } else if (arg == "--list-rules") {
      for (const std::string& rule : rago::lint::RuleNames()) {
        std::cout << rule << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: rago_lint [--root DIR] [--config FILE] "
                   "[--list-rules] [path...]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "rago_lint: unknown flag " << arg << "\n";
      return 2;
    } else {
      targets.push_back(arg);
    }
  }
  if (targets.empty()) {
    targets = {"src", "tests", "bench", "examples", "tools"};
  }

  rago::lint::LintConfig config;
  if (!config_path.empty()) {
    fs::path cfg = config_path;
    if (cfg.is_relative()) {
      cfg = root / cfg;
    }
    config = rago::lint::ParseConfig(ReadFile(cfg));
  }

  std::vector<fs::path> files;
  for (const std::string& target : targets) {
    const fs::path path = root / target;
    if (fs::is_directory(path)) {
      for (const auto& entry : fs::recursive_directory_iterator(path)) {
        if (entry.is_regular_file() && IsSourceFile(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(path)) {
      files.push_back(path);
    } else {
      std::cerr << "rago_lint: no such path " << path << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  size_t violation_count = 0;
  for (const fs::path& file : files) {
    const std::vector<rago::lint::Violation> violations =
        rago::lint::LintSource(RelPath(root, file), ReadFile(file), config);
    for (const rago::lint::Violation& v : violations) {
      std::cout << v.file << ":" << v.line << ": [" << v.rule << "] "
                << v.message << "\n";
      ++violation_count;
    }
  }
  std::cout << "rago_lint: " << files.size() << " files, "
            << violation_count << " violation"
            << (violation_count == 1 ? "" : "s") << "\n";
  return violation_count == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "rago_lint: " << e.what() << "\n";
    return 2;
  }
}
