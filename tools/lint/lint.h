/**
 * @file lint.h
 * rago_lint: repo-specific determinism/concurrency static analysis.
 *
 * Every layer of this codebase rests on one contract: fixed seed =>
 * bit-identical digests for any thread count. The linter makes the
 * invariants behind that contract machine-checked instead of
 * review-checked. It tokenizes each translation unit (comments and
 * string-literal contents stripped, raw-string aware, line numbers
 * preserved) and enforces:
 *
 *  - `wallclock`      no `::now()` / C wall-clock reads outside the
 *                     approved perf/bench/roofline measurement files;
 *                     simulation and serving logic must use the
 *                     virtual clock.
 *  - `raw-rng`        no `rand()`, `std::random_device`, or direct
 *                     `std::mt19937`-family engines; all randomness
 *                     flows through common/rng.h (`Rng::DeriveSeed`).
 *  - `unordered-iter` no range-iteration over `std::unordered_map` /
 *                     `std::unordered_set` in digest/JSON/telemetry
 *                     export paths (iteration order is
 *                     implementation-defined => nondeterministic
 *                     output). Scoped to the `export-path` prefixes
 *                     from the config.
 *  - `raw-thread`     no raw `std::thread` construction, `std::async`,
 *                     or `.detach()` outside common/thread_pool.*;
 *                     parallelism goes through ThreadPool/ParallelFor
 *                     so the determinism contract holds.
 *  - `raw-throw`      no `throw std::...`; library errors go through
 *                     RAGO_CHECK / RAGO_REQUIRE or the rago error
 *                     types so callers can classify them.
 *  - `assert`         no C `assert(` (compiled out in release builds);
 *                     invariants use RAGO_CHECK / RAGO_REQUIRE.
 *  - `bare-io`        no bare `std::cout` / `printf` in library code;
 *                     libraries return data, binaries print.
 *  - `include-guard`  headers carry the path-derived `RAGO_..._H`
 *                     guard (no `#pragma once`); derived names make
 *                     guard collisions structurally impossible.
 *
 * Suppression: a trailing `// rago-lint: allow(<rule>[,<rule>...])`
 * comment disables the named rule(s) for the line(s) the comment
 * touches. File-level policy lives in a config (see ParseConfig):
 * `allow <rule> <path-prefix>` exempts a file or directory subtree,
 * `export-path <path-prefix>` scopes `unordered-iter`.
 */
#ifndef RAGO_TOOLS_LINT_LINT_H
#define RAGO_TOOLS_LINT_LINT_H

#include <map>
#include <set>
#include <string>
#include <vector>

namespace rago {
namespace lint {

/// One rule violation at a source line (1-based).
struct Violation {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// Names of all rules, in reporting order.
const std::vector<std::string>& RuleNames();

/// True if `rule` is a known rule name.
bool IsKnownRule(const std::string& rule);

/// File-level lint policy.
struct LintConfig {
  /// rule name -> path prefixes (normalized, '/'-separated) exempt
  /// from that rule. A prefix matches the exact path or any path
  /// under it when the prefix names a directory (trailing '/').
  std::map<std::string, std::vector<std::string>> allow;

  /// Path prefixes whose files are digest/JSON/telemetry export paths;
  /// `unordered-iter` fires only inside these. Empty => rule inert.
  std::vector<std::string> export_paths;
};

/**
 * Parses a config document. Line-oriented: `#` comments and blank
 * lines skipped; directives are `allow <rule> <path-prefix>` and
 * `export-path <path-prefix>`. Throws rago::ConfigError on unknown
 * directives or rule names.
 */
LintConfig ParseConfig(const std::string& text);

/// Source text after comment/string stripping, plus per-line
/// suppressions harvested from `rago-lint: allow(...)` comments.
struct StrippedSource {
  /// Same line structure as the input; comment bodies and
  /// string/char-literal contents replaced with spaces (delimiters
  /// kept), raw strings handled, newlines preserved.
  std::string code;
  /// 1-based line -> rules suppressed on that line.
  std::map<int, std::set<std::string>> suppressions;
};

/// Strips comments and literal contents from a C++ source buffer.
StrippedSource StripSource(const std::string& content);

/**
 * Lints one in-memory source buffer. `path` is the repo-relative,
 * '/'-separated path used for config matching and reporting; it does
 * not need to exist on disk. Violations come back sorted by line.
 */
std::vector<Violation> LintSource(const std::string& path,
                                  const std::string& content,
                                  const LintConfig& config);

}  // namespace lint
}  // namespace rago

#endif  // RAGO_TOOLS_LINT_LINT_H
