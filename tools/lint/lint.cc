/**
 * @file lint.cc
 * Implementation of the rago_lint rules (see lint.h).
 *
 * The analysis is deliberately token-level, not a full parse: each
 * rule targets a construct whose mere presence is the violation
 * (wall-clock call, raw engine type, C assert), so stripping comments
 * and literals and then matching identifier tokens is both sufficient
 * and robust. The one rule that needs context — `unordered-iter` —
 * uses a per-file heuristic: collect names declared with an
 * `unordered_map`/`unordered_set` type in the same file, then flag
 * range-for statements whose range expression mentions one of them.
 * Type aliases hide declarations from that heuristic; the export-path
 * scoping plus review keeps the residual risk small.
 *
 * The tokenizer the checkers run over (StripSource) lives in strip.cc.
 */
#include "tools/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/check.h"
#include "tools/lint/strip.h"

namespace rago {
namespace lint {

namespace {

const char* const kRuleNames[] = {
    "wallclock", "raw-rng", "unordered-iter", "raw-thread", "raw-throw",
    "assert", "bare-io", "include-guard",
};

}  // namespace

const std::vector<std::string>& RuleNames() {
  static const std::vector<std::string> names(std::begin(kRuleNames),
                                              std::end(kRuleNames));
  return names;
}

bool IsKnownRule(const std::string& rule) {
  const std::vector<std::string>& names = RuleNames();
  return std::find(names.begin(), names.end(), rule) != names.end();
}

LintConfig ParseConfig(const std::string& text) {
  LintConfig config;
  std::istringstream stream(text);
  std::string raw_line;
  int line_no = 0;
  while (std::getline(stream, raw_line)) {
    ++line_no;
    const size_t hash = raw_line.find('#');
    std::string line =
        hash == std::string::npos ? raw_line : raw_line.substr(0, hash);
    std::istringstream fields(line);
    std::string directive;
    if (!(fields >> directive)) {
      continue;  // Blank or comment-only line.
    }
    if (directive == "allow") {
      std::string rule;
      std::string prefix;
      RAGO_REQUIRE(static_cast<bool>(fields >> rule >> prefix),
                   "lint config line " + std::to_string(line_no) +
                       ": allow needs <rule> <path-prefix>");
      RAGO_REQUIRE(IsKnownRule(rule), "lint config line " +
                                          std::to_string(line_no) +
                                          ": unknown rule '" + rule + "'");
      config.allow[rule].push_back(prefix);
    } else if (directive == "export-path") {
      std::string prefix;
      RAGO_REQUIRE(static_cast<bool>(fields >> prefix),
                   "lint config line " + std::to_string(line_no) +
                       ": export-path needs <path-prefix>");
      config.export_paths.push_back(prefix);
    } else {
      RAGO_REQUIRE(false, "lint config line " + std::to_string(line_no) +
                              ": unknown directive '" + directive + "'");
    }
    std::string extra;
    RAGO_REQUIRE(!(fields >> extra),
                 "lint config line " + std::to_string(line_no) +
                     ": trailing token '" + extra + "'");
  }
  return config;
}

namespace {

/// A candidate violation before suppression filtering.
struct Hit {
  size_t pos = 0;
  const char* rule = nullptr;
  std::string message;
};

/// 1-based line of byte offset `pos` given sorted line-start offsets.
int LineOf(const std::vector<size_t>& line_starts, size_t pos) {
  const auto it =
      std::upper_bound(line_starts.begin(), line_starts.end(), pos);
  return static_cast<int>(it - line_starts.begin());
}

/// True if code[pos, pos+len) is a full identifier token.
bool IsFullIdent(const std::string& code, size_t pos, size_t len) {
  if (pos > 0 && IsIdentChar(code[pos - 1])) {
    return false;
  }
  const size_t end = pos + len;
  return end >= code.size() || !IsIdentChar(code[end]);
}

size_t SkipSpace(const std::string& code, size_t pos) {
  while (pos < code.size() && IsSpace(code[pos])) {
    ++pos;
  }
  return pos;
}

/// Last non-whitespace char strictly before `pos` ('\0' if none).
char PrevNonSpace(const std::string& code, size_t pos) {
  while (pos > 0) {
    --pos;
    if (!IsSpace(code[pos])) {
      return code[pos];
    }
  }
  return '\0';
}

/// All occurrences of identifier `name` as a full token.
std::vector<size_t> FindIdent(const std::string& code,
                              const std::string& name) {
  std::vector<size_t> hits;
  size_t pos = 0;
  while ((pos = code.find(name, pos)) != std::string::npos) {
    if (IsFullIdent(code, pos, name.size())) {
      hits.push_back(pos);
    }
    pos += name.size();
  }
  return hits;
}

/// True if the full identifier at `pos` is followed by '(' (after ws).
bool CalledAt(const std::string& code, size_t pos, size_t len) {
  const size_t after = SkipSpace(code, pos + len);
  return after < code.size() && code[after] == '(';
}

/// True if the identifier at `pos` is qualified as `std::<ident>`.
bool StdQualified(const std::string& code, size_t pos) {
  size_t p = pos;
  while (p > 0 && IsSpace(code[p - 1])) --p;
  if (p < 2 || code[p - 1] != ':' || code[p - 2] != ':') {
    return false;
  }
  p -= 2;
  while (p > 0 && IsSpace(code[p - 1])) --p;
  return p >= 3 && code.compare(p - 3, 3, "std") == 0 &&
         IsFullIdent(code, p - 3, 3);
}

void CheckWallclock(const std::string& code, std::vector<Hit>* hits) {
  // `<anything>::now(` — covers steady_clock/system_clock/
  // high_resolution_clock and `using Clock = ...` aliases.
  for (size_t pos : FindIdent(code, "now")) {
    if (pos < 2 || code[pos - 1] != ':' || code[pos - 2] != ':') {
      continue;
    }
    if (CalledAt(code, pos, 3)) {
      hits->push_back({pos, "wallclock",
                       "wall-clock read `::now()` — serving/sim logic must "
                       "use the virtual clock; measurement-only reads need "
                       "an allow(wallclock) justification"});
    }
  }
  // C wall-clock entry points.
  for (const char* fn : {"gettimeofday", "clock_gettime", "timespec_get"}) {
    for (size_t pos : FindIdent(code, fn)) {
      if (CalledAt(code, pos, std::string(fn).size())) {
        hits->push_back({pos, "wallclock",
                         std::string("wall-clock read `") + fn + "()`"});
      }
    }
  }
  // `time(...)` / `std::time(...)` but not member calls like `x.time()`.
  for (size_t pos : FindIdent(code, "time")) {
    if (!CalledAt(code, pos, 4)) {
      continue;
    }
    const char prev = PrevNonSpace(code, pos);
    if (prev == '.' || prev == '>') {
      continue;  // Member access (including `->`).
    }
    hits->push_back({pos, "wallclock", "wall-clock read `time()`"});
  }
}

void CheckRawRng(const std::string& code, std::vector<Hit>* hits) {
  // Callable entry points (require a call).
  for (const char* fn : {"rand", "srand", "rand_r", "drand48", "srand48",
                         "random_shuffle"}) {
    for (size_t pos : FindIdent(code, fn)) {
      if (CalledAt(code, pos, std::string(fn).size())) {
        hits->push_back({pos, "raw-rng",
                         std::string("raw randomness `") + fn +
                             "()` — use rago::Rng (common/rng.h) so the "
                             "stream is seed-reproducible"});
      }
    }
  }
  // Engine / device type names (any mention is a violation).
  for (const char* type :
       {"random_device", "mt19937", "mt19937_64", "minstd_rand",
        "minstd_rand0", "default_random_engine", "ranlux24", "ranlux48",
        "knuth_b"}) {
    for (size_t pos : FindIdent(code, type)) {
      hits->push_back({pos, "raw-rng",
                       std::string("raw random engine `") + type +
                           "` — use rago::Rng (common/rng.h) and "
                           "Rng::DeriveSeed for substreams"});
    }
  }
}

void CheckRawThread(const std::string& code, std::vector<Hit>* hits) {
  for (size_t pos : FindIdent(code, "thread")) {
    if (!StdQualified(code, pos)) {
      continue;
    }
    // `std::thread::id`, `std::thread::hardware_concurrency` are
    // observers, not thread creation.
    const size_t after = SkipSpace(code, pos + 6);
    if (after + 1 < code.size() && code[after] == ':' &&
        code[after + 1] == ':') {
      continue;
    }
    hits->push_back({pos, "raw-thread",
                     "raw `std::thread` — use ThreadPool/ParallelFor "
                     "(common/thread_pool.h) so work partitioning stays "
                     "deterministic"});
  }
  for (const char* name : {"jthread", "async"}) {
    for (size_t pos : FindIdent(code, name)) {
      if (StdQualified(code, pos)) {
        hits->push_back({pos, "raw-thread",
                         std::string("raw `std::") + name +
                             "` — use ThreadPool/ParallelFor "
                             "(common/thread_pool.h)"});
      }
    }
  }
  for (size_t pos : FindIdent(code, "detach")) {
    const char prev = PrevNonSpace(code, pos);
    if ((prev == '.' || prev == '>') && CalledAt(code, pos, 6)) {
      hits->push_back({pos, "raw-thread",
                       "`.detach()` — detached threads outlive the "
                       "pool's determinism barrier"});
    }
  }
}

void CheckAssert(const std::string& code, std::vector<Hit>* hits) {
  for (size_t pos : FindIdent(code, "assert")) {
    if (CalledAt(code, pos, 6)) {
      hits->push_back({pos, "assert",
                       "C `assert()` compiles out in release builds — "
                       "use RAGO_CHECK (invariant) or RAGO_REQUIRE "
                       "(config validation)"});
    }
  }
}

void CheckRawThrow(const std::string& code, std::vector<Hit>* hits) {
  for (size_t pos : FindIdent(code, "throw")) {
    const size_t after = SkipSpace(code, pos + 5);
    if (code.compare(after, 3, "std") != 0 || !IsFullIdent(code, after, 3)) {
      continue;
    }
    const size_t q = SkipSpace(code, after + 3);
    if (q + 1 < code.size() && code[q] == ':' && code[q + 1] == ':') {
      hits->push_back({pos, "raw-throw",
                       "`throw std::...` — library errors go through "
                       "RAGO_CHECK / RAGO_REQUIRE or the rago error types "
                       "(ConfigError, InternalError) so callers can "
                       "classify them"});
    }
  }
}

/// Path-derived guard macro: `src/` dropped, the rest uppercased with
/// every non-alphanumeric byte mapped to '_' (src/common/rng.h =>
/// RAGO_COMMON_RNG_H, tools/lint/lint.h => RAGO_TOOLS_LINT_LINT_H).
std::string ExpectedGuard(const std::string& path) {
  std::string rel = path;
  if (rel.compare(0, 4, "src/") == 0) {
    rel = rel.substr(4);
  }
  std::string guard = "RAGO_";
  for (const char c : rel) {
    guard.push_back(
        std::isalnum(static_cast<unsigned char>(c)) != 0
            ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
            : '_');
  }
  return guard;
}

void CheckIncludeGuard(const std::string& path, const std::string& code,
                       std::vector<Hit>* hits) {
  // `#pragma once` is rejected outright: the named guard is what makes
  // the double-include self-check meaningful, and deriving the name
  // from the path makes guard collisions structurally impossible.
  size_t pos = 0;
  while ((pos = code.find("#pragma", pos)) != std::string::npos) {
    const size_t after = SkipSpace(code, pos + 7);
    if (code.compare(after, 4, "once") == 0 && IsFullIdent(code, after, 4)) {
      hits->push_back({pos, "include-guard",
                       "`#pragma once` — use the path-derived include "
                       "guard `" + ExpectedGuard(path) + "` instead"});
    }
    pos += 7;
  }
  const std::string guard = ExpectedGuard(path);
  const auto has_directive = [&](const std::string& directive) {
    size_t p = 0;
    while ((p = code.find(directive, p)) != std::string::npos) {
      const size_t a = SkipSpace(code, p + directive.size());
      if (code.compare(a, guard.size(), guard) == 0 &&
          IsFullIdent(code, a, guard.size())) {
        return true;
      }
      p += directive.size();
    }
    return false;
  };
  if (!has_directive("#ifndef") || !has_directive("#define")) {
    hits->push_back({0, "include-guard",
                     "missing or misnamed include guard — expected "
                     "`#ifndef " + guard + "` / `#define " + guard + "`"});
  }
}

void CheckBareIo(const std::string& code, std::vector<Hit>* hits) {
  for (size_t pos : FindIdent(code, "cout")) {
    if (StdQualified(code, pos)) {
      hits->push_back({pos, "bare-io",
                       "`std::cout` in library code — libraries return "
                       "data; printing belongs in binaries"});
    }
  }
  for (const char* fn : {"printf", "puts", "putchar"}) {
    for (size_t pos : FindIdent(code, fn)) {
      const char prev = PrevNonSpace(code, pos);
      if (prev == '.' || prev == '>') {
        continue;
      }
      if (CalledAt(code, pos, std::string(fn).size())) {
        hits->push_back({pos, "bare-io",
                         std::string("`") + fn +
                             "()` in library code — libraries return "
                             "data; printing belongs in binaries"});
      }
    }
  }
}

/// Names declared in this file with an unordered associative type.
std::set<std::string> UnorderedDecls(const std::string& code) {
  std::set<std::string> names;
  for (const char* type : {"unordered_map", "unordered_set",
                           "unordered_multimap", "unordered_multiset"}) {
    for (size_t pos : FindIdent(code, type)) {
      size_t p = SkipSpace(code, pos + std::string(type).size());
      if (p >= code.size() || code[p] != '<') {
        continue;
      }
      // Balance the template argument list ('>' may close two depths
      // via '>>'; treat each '>' individually, parens/brackets opaque).
      int depth = 0;
      while (p < code.size()) {
        const char c = code[p];
        if (c == '<') {
          ++depth;
        } else if (c == '>') {
          --depth;
          if (depth == 0) {
            ++p;
            break;
          }
        }
        ++p;
      }
      if (depth != 0) {
        continue;
      }
      // Skip qualifiers/ref tokens, then read the declared name.
      // `unordered_map<K,V>::iterator it` is not a container decl.
      for (;;) {
        p = SkipSpace(code, p);
        if (p < code.size() && (code[p] == '&' || code[p] == '*')) {
          ++p;
          continue;
        }
        if (code.compare(p, 5, "const") == 0 && IsFullIdent(code, p, 5)) {
          p += 5;
          continue;
        }
        break;
      }
      if (p + 1 < code.size() && code[p] == ':' && code[p + 1] == ':') {
        continue;
      }
      size_t end = p;
      while (end < code.size() && IsIdentChar(code[end])) {
        ++end;
      }
      if (end > p) {
        names.insert(code.substr(p, end - p));
      }
    }
  }
  return names;
}

void CheckUnorderedIter(const std::string& code, std::vector<Hit>* hits) {
  const std::set<std::string> decls = UnorderedDecls(code);
  if (decls.empty()) {
    return;
  }
  for (size_t pos : FindIdent(code, "for")) {
    size_t p = SkipSpace(code, pos + 3);
    if (p >= code.size() || code[p] != '(') {
      continue;
    }
    // Find the top-level ':' (range-for separator) inside the parens.
    int depth = 0;
    size_t colon = std::string::npos;
    size_t close = std::string::npos;
    for (size_t q = p; q < code.size(); ++q) {
      const char c = code[q];
      if (c == '(' || c == '[' || c == '{' || c == '<') {
        ++depth;
      } else if (c == '>' && q > 0 && code[q - 1] == '-') {
        // `->` member access, not a closing angle bracket.
      } else if (c == ')' || c == ']' || c == '}' || c == '>') {
        --depth;
        if (c == ')' && depth == 0) {
          close = q;
          break;
        }
      } else if (c == ':' && depth == 1) {
        const bool double_colon =
            (q + 1 < code.size() && code[q + 1] == ':') ||
            (q > 0 && code[q - 1] == ':');
        if (!double_colon && colon == std::string::npos) {
          colon = q;
        }
      }
    }
    if (colon == std::string::npos || close == std::string::npos) {
      continue;
    }
    // Does the range expression mention a declared unordered name?
    const std::string range = code.substr(colon + 1, close - colon - 1);
    size_t q = 0;
    while (q < range.size()) {
      if (IsIdentChar(range[q])) {
        size_t end = q;
        while (end < range.size() && IsIdentChar(range[end])) {
          ++end;
        }
        if (decls.count(range.substr(q, end - q)) > 0) {
          hits->push_back(
              {pos, "unordered-iter",
               "range-for over `" + range.substr(q, end - q) +
                   "` (unordered container) in an export path — "
                   "iteration order is nondeterministic; sort keys or "
                   "use std::map"});
          break;
        }
        q = end;
      } else {
        ++q;
      }
    }
  }
}

/// True if `path` equals the prefix or lives under it.
bool PrefixMatches(const std::string& path, const std::string& prefix) {
  if (prefix.empty()) {
    return false;
  }
  std::string p = prefix;
  if (p.back() == '/') {
    p.pop_back();
  }
  if (path.size() < p.size() || path.compare(0, p.size(), p) != 0) {
    return false;
  }
  return path.size() == p.size() || path[p.size()] == '/';
}

bool RuleAllowedFor(const LintConfig& config, const std::string& rule,
                    const std::string& path) {
  const auto it = config.allow.find(rule);
  if (it == config.allow.end()) {
    return false;
  }
  for (const std::string& prefix : it->second) {
    if (PrefixMatches(path, prefix)) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<Violation> LintSource(const std::string& path,
                                  const std::string& content,
                                  const LintConfig& config) {
  std::string norm = path;
  std::replace(norm.begin(), norm.end(), '\\', '/');

  const StrippedSource stripped = StripSource(content);
  const std::string& code = stripped.code;

  std::vector<size_t> line_starts = {0};
  for (size_t i = 0; i < code.size(); ++i) {
    if (code[i] == '\n') {
      line_starts.push_back(i + 1);
    }
  }

  std::vector<Hit> hits;
  if (!RuleAllowedFor(config, "wallclock", norm)) {
    CheckWallclock(code, &hits);
  }
  if (!RuleAllowedFor(config, "raw-rng", norm)) {
    CheckRawRng(code, &hits);
  }
  if (!RuleAllowedFor(config, "raw-thread", norm)) {
    CheckRawThread(code, &hits);
  }
  if (!RuleAllowedFor(config, "raw-throw", norm)) {
    CheckRawThrow(code, &hits);
  }
  if (!RuleAllowedFor(config, "assert", norm)) {
    CheckAssert(code, &hits);
  }
  if (!RuleAllowedFor(config, "bare-io", norm)) {
    CheckBareIo(code, &hits);
  }
  const bool is_header =
      (norm.size() >= 2 && norm.compare(norm.size() - 2, 2, ".h") == 0) ||
      (norm.size() >= 4 && norm.compare(norm.size() - 4, 4, ".hpp") == 0);
  if (is_header && !RuleAllowedFor(config, "include-guard", norm)) {
    CheckIncludeGuard(norm, code, &hits);
  }
  bool in_export_path = false;
  for (const std::string& prefix : config.export_paths) {
    if (PrefixMatches(norm, prefix)) {
      in_export_path = true;
      break;
    }
  }
  if (in_export_path && !RuleAllowedFor(config, "unordered-iter", norm)) {
    CheckUnorderedIter(code, &hits);
  }

  std::vector<Violation> violations;
  for (const Hit& hit : hits) {
    const int line = LineOf(line_starts, hit.pos);
    const auto it = stripped.suppressions.find(line);
    if (it != stripped.suppressions.end() &&
        it->second.count(hit.rule) > 0) {
      continue;
    }
    violations.push_back(Violation{norm, line, hit.rule, hit.message});
  }
  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              return a.line != b.line ? a.line < b.line : a.rule < b.rule;
            });
  return violations;
}

}  // namespace lint
}  // namespace rago
